//! The DumbNet switch.
//!
//! The entire data plane (§3.2): *"each switch simply examines the packet
//! header to find out the output port at the current hop and forwards the
//! packet accordingly"*. No forwarding table, no learning, no
//! configuration. The only other behaviours are the two the paper
//! explicitly grants the hardware (§3.1, §4.2):
//!
//! 1. **ID query** — a popped tag of `0` makes the switch reply with its
//!    factory-unique ID along the remaining tags, echoing the triggering
//!    payload so probers can correlate replies.
//! 2. **Port monitoring** — on a carrier change the switch broadcasts a
//!    hop-limited link notification out of every port, at most one alarm
//!    per second per port (flap suppression). Received notifications are
//!    re-broadcast with the TTL decremented — still stateless.

use std::any::Any;

use dumbnet_fpga::refmodel::{self, RefDrop, RefVerdict};
use dumbnet_packet::control::{LinkEvent, PortStat};
use dumbnet_packet::{ControlMessage, DumbNetFrame, Packet, Payload};
use dumbnet_sim::{Ctx, Node};
use dumbnet_telemetry::{Counter, NodeKind, Telemetry, TraceCategory};
use dumbnet_types::{MacAddr, PortNo, SimDuration, SimTime, SwitchId};

/// Tunables for the dumb switch. Everything here models a *hardware*
/// property, not configuration state: the values are identical for every
/// switch in a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumbSwitchConfig {
    /// Hop limit stamped on self-originated link notifications. "As
    /// modern data center topologies often have small diameters, a max of
    /// 5 hops is often enough" (§4.2).
    pub notification_ttl: u8,
    /// Minimum spacing of alarms per port ("the switch will send out one
    /// alarm per second per port").
    pub alarm_interval: SimDuration,
    /// Delay between a physical state change and the alarm going out.
    /// Zero models hardware-based monitoring; the paper's testbed used
    /// "a script on Arista switch to monitor the port state", which the
    /// Figure 11(b) reproduction models with a non-zero value here
    /// ("these packets can be sent even faster if it's done by
    /// hardware").
    pub detection_delay: SimDuration,
    /// Runtime verification: when set, every `forward` decision is
    /// replayed through the byte-level reference interpreter
    /// ([`dumbnet_fpga::refmodel`]) and any disagreement — egress port,
    /// post-pop bytes-on-wire, FCS, or drop/accept — bumps the
    /// `ref_divergence` counter (DESIGN.md §8). Not a hardware
    /// property; a differential-testing harness, off by default.
    pub shadow_check: bool,
}

impl Default for DumbSwitchConfig {
    fn default() -> DumbSwitchConfig {
        DumbSwitchConfig {
            notification_ttl: 5,
            alarm_interval: SimDuration::from_secs(1),
            detection_delay: SimDuration::ZERO,
            shadow_check: false,
        }
    }
}

/// Counters exposed for experiments; real hardware would keep none of
/// this (it exists so tests can observe behaviour).
///
/// A point-in-time view assembled by [`DumbSwitch::stats`] from the
/// switch's telemetry [`Counter`] handles, which are registered with
/// the world's registry under `(NodeKind::Switch, switch id, name)`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DumbSwitchStats {
    /// Packets forwarded by tag.
    pub forwarded: u64,
    /// Packets dropped because the path was exhausted (a switch saw ø).
    pub dropped_exhausted: u64,
    /// Packets dropped because the popped tag was not interpretable —
    /// the ø byte where a port tag belongs. Distinct from exhaustion:
    /// an exhausted path is a routing mistake, a malformed tag is a
    /// corrupted or forged frame.
    pub dropped_malformed: u64,
    /// Forward decisions that disagreed with the reference interpreter
    /// (only counted when [`DumbSwitchConfig::shadow_check`] is set;
    /// any nonzero value is a data-plane bug — see DESIGN.md §8).
    pub ref_divergence: u64,
    /// ID queries answered.
    pub id_replies: u64,
    /// Self-originated link alarms sent (per-port batches count once).
    pub alarms_sent: u64,
    /// Alarms suppressed by the per-port rate limit.
    pub alarms_suppressed: u64,
    /// Foreign notifications re-broadcast.
    pub notifications_relayed: u64,
}

/// Live counter handles backing [`DumbSwitchStats`].
#[derive(Debug, Default, Clone)]
struct SwitchCounters {
    forwarded: Counter,
    dropped_exhausted: Counter,
    dropped_malformed: Counter,
    ref_divergence: Counter,
    id_replies: Counter,
    alarms_sent: Counter,
    alarms_suppressed: Counter,
    notifications_relayed: Counter,
    /// Sum of per-port tx counters, synced in `publish_telemetry`.
    tx_packets: Counter,
    tx_bytes: Counter,
}

impl SwitchCounters {
    fn register(&self, telemetry: &Telemetry, id: SwitchId) {
        let node = id.get();
        for (name, c) in [
            ("forwarded", &self.forwarded),
            ("dropped_exhausted", &self.dropped_exhausted),
            ("dropped_malformed", &self.dropped_malformed),
            ("ref_divergence", &self.ref_divergence),
            ("id_replies", &self.id_replies),
            ("alarms_sent", &self.alarms_sent),
            ("alarms_suppressed", &self.alarms_suppressed),
            ("notifications_relayed", &self.notifications_relayed),
            ("tx_packets", &self.tx_packets),
            ("tx_bytes", &self.tx_bytes),
        ] {
            telemetry.register_counter(NodeKind::Switch, node, name, c);
        }
    }

    fn view(&self) -> DumbSwitchStats {
        DumbSwitchStats {
            forwarded: self.forwarded.get(),
            dropped_exhausted: self.dropped_exhausted.get(),
            dropped_malformed: self.dropped_malformed.get(),
            ref_divergence: self.ref_divergence.get(),
            id_replies: self.id_replies.get(),
            alarms_sent: self.alarms_sent.get(),
            alarms_suppressed: self.alarms_suppressed.get(),
            notifications_relayed: self.notifications_relayed.get(),
        }
    }
}

/// Per-port monitoring state: last alarm time and sequence counter.
///
/// This is *soft, local* state about the switch's own ports — the paper
/// explicitly keeps "physical link state monitoring for its own ports" in
/// the switch. There is still no forwarding or topology state.
#[derive(Debug, Clone, Copy, Default)]
struct PortMonitor {
    /// Packets transmitted out of this port (§8 statistics: a counter is
    /// soft state — losing it loses history, never correctness).
    tx_packets: u64,
    /// Bytes transmitted out of this port.
    tx_bytes: u64,
    last_alarm: Option<SimTime>,
    /// State carried by the last alarm that actually went out.
    last_announced_up: Option<bool>,
    /// Whether a re-announce check is already scheduled.
    recheck_pending: bool,
    seq: u64,
}

/// The DumbNet switch node.
#[derive(Debug)]
pub struct DumbSwitch {
    id: SwitchId,
    config: DumbSwitchConfig,
    /// Indexed by `PortNo::index()`; sized at construction from the port
    /// count (a hardware property).
    monitors: Vec<PortMonitor>,
    counters: SwitchCounters,
}

impl DumbSwitch {
    /// Creates a switch with `ports` physical ports.
    #[must_use]
    pub fn new(id: SwitchId, ports: u8, config: DumbSwitchConfig) -> DumbSwitch {
        DumbSwitch {
            id,
            config,
            monitors: vec![PortMonitor::default(); usize::from(ports.min(0xFE))],
            counters: SwitchCounters::default(),
        }
    }

    /// The switch's factory ID.
    #[must_use]
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Experiment counters.
    #[must_use]
    pub fn stats(&self) -> DumbSwitchStats {
        self.counters.view()
    }

    /// Serializes the typed packet the way the wire would carry it, with
    /// a payload synthesized deterministically from the typed payload's
    /// accounting size (the pop/demux semantics never depend on payload
    /// *content*, so a stand-in body suffices for the byte-level
    /// comparison while keeping the shadow check cheap).
    fn shadow_wire(pkt: &Packet) -> Vec<u8> {
        let n = pkt.payload.wire_size();
        let body = vec![(n as u8) ^ 0x5A; n.min(24)];
        DumbNetFrame::encapsulate(pkt.dst, pkt.src, pkt.path.clone(), 0x0800, body).to_wire()
    }

    /// Compares the decision the production path just took against the
    /// reference interpreter's verdict for the same bytes-on-wire.
    /// `post` is the packet *after* the pop for decisions that keep it.
    fn shadow_compare(
        &mut self,
        ctx: &mut Ctx<'_>,
        pre_wire: &[u8],
        decision: &str,
        port: Option<PortNo>,
        post: Option<&Packet>,
    ) {
        let verdict = refmodel::step(pre_wire);
        let agrees = match (&verdict, decision) {
            (RefVerdict::Drop(RefDrop::PathExhausted), "exhausted") => true,
            (RefVerdict::Drop(RefDrop::MalformedTag), "malformed") => true,
            (RefVerdict::IdQuery { .. }, "id_query") => true,
            (
                RefVerdict::Forward {
                    port: rp, frame, ..
                },
                "forward",
            ) => {
                // Same egress, and the post-pop frame re-serializes to
                // the exact bytes (tags shifted, FCS recomputed) the
                // reference pipeline emitted.
                port.is_some_and(|p| p.get() == *rp)
                    && post.is_some_and(|pkt| Self::shadow_wire(pkt) == *frame)
            }
            _ => false,
        };
        if !agrees {
            self.counters.ref_divergence.inc();
            ctx.trace(
                TraceCategory::Packet,
                NodeKind::Switch,
                self.id.get(),
                || {
                    format!(
                        "switch {} DIVERGENCE: production decided {decision} \
                         (port {:?}), reference model says {verdict:?}",
                        self.id.0,
                        port.map(PortNo::get),
                    )
                },
            );
        }
    }

    /// Forwards a packet by its head tag, handling ID queries. Both the
    /// data path and the ID-reply path funnel through here.
    fn forward(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        // Differential shadow execution: capture the bytes-on-wire view
        // of the packet *before* the pop so the reference interpreter
        // sees exactly what hardware would.
        let shadow = self.config.shadow_check.then(|| Self::shadow_wire(&pkt));
        match pkt.pop_tag() {
            None => {
                // Path exhausted at a switch: only hosts consume ø.
                self.counters.dropped_exhausted.inc();
                if let Some(wire) = shadow {
                    self.shadow_compare(ctx, &wire, "exhausted", None, None);
                }
            }
            Some(tag) if tag.is_id_query() => {
                self.counters.id_replies.inc();
                if let Some(wire) = shadow {
                    self.shadow_compare(ctx, &wire, "id_query", None, None);
                }
                // A query tag carrying a statistics request returns the
                // port counters instead of the switch ID (§8).
                if let Payload::Control(ControlMessage::StatsQuery { probe_id }) = pkt.payload {
                    let ports = self
                        .monitors
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.tx_packets > 0)
                        .filter_map(|(ix, m)| {
                            Some(PortStat {
                                port: PortNo::from_index(ix)?,
                                tx_packets: m.tx_packets,
                                tx_bytes: m.tx_bytes,
                            })
                        })
                        .collect();
                    let reply = Packet::control(
                        pkt.src,
                        MacAddr::default(),
                        pkt.path,
                        ControlMessage::StatsReply {
                            switch: self.id,
                            probe_id,
                            ports,
                        },
                    );
                    self.forward(ctx, reply);
                    return;
                }
                let echo = match pkt.payload {
                    Payload::Control(msg) => Some(Box::new(msg)),
                    Payload::Data { .. } | Payload::Ip { .. } => None,
                };
                let reply = Packet::control(
                    pkt.src, // Back toward whoever asked.
                    MacAddr::default(),
                    pkt.path,
                    ControlMessage::SwitchIdReply {
                        switch: self.id,
                        echo,
                    },
                );
                // The reply is itself a tag-routed packet: forward it.
                self.forward(ctx, reply);
            }
            Some(tag) => {
                let Some(port) = tag.as_port() else {
                    // ø can never be popped (path constructors exclude
                    // it), so every non-query tag is a port. If one
                    // appears anyway the frame is corrupt or forged:
                    // count it as malformed, never abort.
                    self.counters.dropped_malformed.inc();
                    if let Some(wire) = shadow {
                        self.shadow_compare(ctx, &wire, "malformed", None, None);
                    }
                    return;
                };
                self.counters.forwarded.inc();
                if let Some(mon) = self.monitors.get_mut(port.index()) {
                    mon.tx_packets += 1;
                    mon.tx_bytes += pkt.wire_len() as u64;
                }
                if let Some(wire) = shadow {
                    self.shadow_compare(ctx, &wire, "forward", Some(port), Some(&pkt));
                }
                ctx.send(port, pkt);
            }
        }
    }

    /// Sends the port-state alarm for `port` and records it as announced.
    fn announce(&mut self, ctx: &mut Ctx<'_>, port: PortNo, up: bool) {
        let Some(mon) = self.monitors.get_mut(port.index()) else {
            return;
        };
        mon.last_alarm = Some(ctx.now());
        mon.last_announced_up = Some(up);
        mon.seq += 1;
        let event = LinkEvent {
            switch: self.id,
            port,
            up,
            seq: mon.seq,
        };
        self.counters.alarms_sent.inc();
        ctx.trace(
            TraceCategory::Chaos,
            NodeKind::Switch,
            self.id.get(),
            || {
                format!(
                    "switch {} port {} alarm: link {}",
                    self.id.0,
                    port.get(),
                    if up { "up" } else { "down" }
                )
            },
        );
        self.broadcast(
            ctx,
            None,
            ControlMessage::LinkNotification {
                event,
                ttl: self.config.notification_ttl,
            },
        );
    }

    /// Floods a notification out of every wired port except `except`.
    fn broadcast(&mut self, ctx: &mut Ctx<'_>, except: Option<PortNo>, msg: ControlMessage) {
        for port in ctx.wired_ports() {
            if Some(port) == except {
                continue;
            }
            let pkt = Packet::control(
                MacAddr::BROADCAST,
                MacAddr::default(),
                dumbnet_types::Path::empty(),
                msg.clone(),
            );
            ctx.send(port, pkt);
        }
    }
}

impl Node for DumbSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.counters.register(ctx.telemetry(), self.id);
    }

    fn publish_telemetry(&mut self) {
        let (pkts, bytes) = self
            .monitors
            .iter()
            .fold((0u64, 0u64), |(p, b), m| (p + m.tx_packets, b + m.tx_bytes));
        self.counters.tx_packets.set(pkts);
        self.counters.tx_bytes.set(bytes);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet) {
        // Hop-limited notification flood: the only packet type a switch
        // inspects beyond the head tag. Matching on the payload enum is
        // the structured equivalent of matching a fixed EtherType.
        if let Payload::Control(ControlMessage::LinkNotification { event, ttl }) = &pkt.payload {
            if *ttl > 0 {
                self.counters.notifications_relayed.inc();
                self.broadcast(
                    ctx,
                    Some(in_port),
                    ControlMessage::LinkNotification {
                        event: *event,
                        ttl: ttl - 1,
                    },
                );
            }
            return;
        }
        // Controller election traffic sent before any topology exists
        // travels the same way: a hop-limited broadcast relay. Unicast
        // (path-carrying) election packets fall through to `forward`.
        if pkt.dst == MacAddr::BROADCAST {
            match &pkt.payload {
                Payload::Control(ControlMessage::LeaderQuery {
                    candidate,
                    term,
                    log_floor,
                    ttl,
                }) => {
                    if *ttl > 0 {
                        self.counters.notifications_relayed.inc();
                        self.broadcast(
                            ctx,
                            Some(in_port),
                            ControlMessage::LeaderQuery {
                                candidate: *candidate,
                                term: *term,
                                log_floor: *log_floor,
                                ttl: ttl - 1,
                            },
                        );
                    }
                    return;
                }
                Payload::Control(ControlMessage::LeaderQueryReply {
                    candidate,
                    responder,
                    term,
                    granted,
                    leader,
                    ttl,
                }) => {
                    if *ttl > 0 {
                        self.counters.notifications_relayed.inc();
                        self.broadcast(
                            ctx,
                            Some(in_port),
                            ControlMessage::LeaderQueryReply {
                                candidate: *candidate,
                                responder: *responder,
                                term: *term,
                                granted: *granted,
                                leader: *leader,
                                ttl: ttl - 1,
                            },
                        );
                    }
                    return;
                }
                _ => {}
            }
        }
        self.forward(ctx, pkt);
    }

    fn on_link_change(&mut self, ctx: &mut Ctx<'_>, port: PortNo, up: bool) {
        let Some(mon) = self.monitors.get_mut(port.index()) else {
            return;
        };
        let now = ctx.now();
        if self.config.detection_delay > SimDuration::ZERO {
            // Software-polled monitoring: defer to the re-check timer,
            // which announces the then-current state.
            if !mon.recheck_pending {
                mon.recheck_pending = true;
                ctx.set_timer(self.config.detection_delay, u64::from(port.get()));
            }
            return;
        }
        if let Some(last) = mon.last_alarm {
            let elapsed = now - last;
            if elapsed < self.config.alarm_interval {
                // Flap suppression — but schedule a single re-check at
                // the window's end so a state that *stays* changed is
                // eventually announced (still ≤ 1 alarm/s/port).
                self.counters.alarms_suppressed.inc();
                if !mon.recheck_pending {
                    mon.recheck_pending = true;
                    let wait = self.config.alarm_interval - elapsed;
                    ctx.set_timer(wait, u64::from(port.get()));
                }
                return;
            }
        }
        self.announce(ctx, port, up);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // Re-announce check for a previously suppressed alarm.
        let Some(port) = u8::try_from(token).ok().and_then(PortNo::new) else {
            return;
        };
        let Some(mon) = self.monitors.get_mut(port.index()) else {
            return;
        };
        mon.recheck_pending = false;
        let up = ctx.link_up(port);
        if mon.last_announced_up != Some(up) {
            self.announce(ctx, port, up);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_sim::{LinkParams, NodeAddr, World};
    use dumbnet_types::{Path, Tag};

    /// Sink node recording everything it receives.
    struct Sink {
        got: Vec<(SimTime, PortNo, Packet)>,
    }

    impl Sink {
        fn new() -> Sink {
            Sink { got: Vec::new() }
        }
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortNo, pkt: Packet) {
            self.got.push((ctx.now(), port, pkt));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn p(n: u8) -> PortNo {
        PortNo::new(n).unwrap()
    }

    /// Two hosts on one switch: h1 on port 1, h2 on port 2.
    fn one_switch_world() -> (World, NodeAddr, NodeAddr, NodeAddr) {
        let mut w = World::new(0);
        let sw = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(1),
            8,
            DumbSwitchConfig::default(),
        )));
        let h1 = w.add_node(Box::new(Sink::new()));
        let h2 = w.add_node(Box::new(Sink::new()));
        w.wire(sw, p(1), h1, p(1), LinkParams::ten_gig()).unwrap();
        w.wire(sw, p(2), h2, p(1), LinkParams::ten_gig()).unwrap();
        (w, sw, h1, h2)
    }

    #[test]
    fn forwards_by_head_tag() {
        let (mut w, sw, _h1, h2) = one_switch_world();
        let pkt = Packet::data(
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            Path::from_ports([2]).unwrap(),
            0,
            0,
            64,
        );
        w.inject(SimTime::ZERO, sw, p(1), pkt);
        w.run_to_idle(100);
        let got = &w.node::<Sink>(h2).unwrap().got;
        assert_eq!(got.len(), 1);
        // Path fully consumed at delivery.
        assert!(got[0].2.path.is_empty());
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.forwarded, 1);
    }

    #[test]
    fn exhausted_path_dropped() {
        let (mut w, sw, h1, h2) = one_switch_world();
        let pkt = Packet::data(
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            Path::empty(),
            0,
            0,
            64,
        );
        w.inject(SimTime::ZERO, sw, p(1), pkt);
        w.run_to_idle(100);
        assert!(w.node::<Sink>(h1).unwrap().got.is_empty());
        assert!(w.node::<Sink>(h2).unwrap().got.is_empty());
        assert_eq!(
            w.node::<DumbSwitch>(sw).unwrap().stats().dropped_exhausted,
            1
        );
    }

    #[test]
    fn id_query_bounces_back_with_echo() {
        let (mut w, sw, h1, _) = one_switch_world();
        // 0-1-ø: query the switch, reply out port 1 (to h1).
        let probe = ControlMessage::Probe {
            origin: MacAddr::for_host(1),
            forward_path: Path::from_tags([Tag::ID_QUERY, Tag(1)]).unwrap(),
            probe_id: 99,
        };
        let pkt = Packet::control(
            MacAddr::BROADCAST,
            MacAddr::for_host(1),
            Path::from_tags([Tag::ID_QUERY, Tag(1)]).unwrap(),
            probe,
        );
        w.inject(SimTime::ZERO, sw, p(1), pkt);
        w.run_to_idle(100);
        let got = &w.node::<Sink>(h1).unwrap().got;
        assert_eq!(got.len(), 1);
        match got[0].2.as_control() {
            Some(ControlMessage::SwitchIdReply { switch, echo }) => {
                assert_eq!(*switch, SwitchId(1));
                match echo.as_deref() {
                    Some(ControlMessage::Probe { probe_id, .. }) => assert_eq!(*probe_id, 99),
                    other => panic!("bad echo {other:?}"),
                }
            }
            other => panic!("expected SwitchIdReply, got {other:?}"),
        }
    }

    #[test]
    fn link_alarm_broadcast_and_suppression() {
        let (mut w, sw, h1, h2) = one_switch_world();
        let wid = w.wire_at(sw, p(2)).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(10);
        // Flap the port rapidly: down, up, down within one second.
        w.schedule_link_state(t0, wid, false);
        w.schedule_link_state(t0 + SimDuration::from_millis(100), wid, true);
        w.schedule_link_state(t0 + SimDuration::from_millis(200), wid, false);
        w.run_to_idle(1000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.alarms_sent, 1, "only the first alarm escapes");
        assert_eq!(stats.alarms_suppressed, 2);
        // h1 (on the surviving port) received the notification.
        let got = &w.node::<Sink>(h1).unwrap().got;
        assert_eq!(got.len(), 1);
        match got[0].2.as_control() {
            Some(ControlMessage::LinkNotification { event, ttl }) => {
                assert_eq!(event.switch, SwitchId(1));
                assert_eq!(event.port, p(2));
                assert!(!event.up);
                assert_eq!(*ttl, 5);
            }
            other => panic!("expected LinkNotification, got {other:?}"),
        }
        // h2's wire is down; nothing could reach it.
        assert!(w.node::<Sink>(h2).unwrap().got.is_empty());
    }

    #[test]
    fn flap_settling_changed_reannounced_once_at_window_end() {
        // Down (alarm), up 100 ms later (suppressed), stays up: the
        // single re-check at the window's end announces the new state —
        // exactly one extra alarm, at `last_alarm + alarm_interval`.
        let (mut w, sw, h1, _h2) = one_switch_world();
        let wid = w.wire_at(sw, p(2)).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(10);
        w.schedule_link_state(t0, wid, false);
        w.schedule_link_state(t0 + SimDuration::from_millis(100), wid, true);
        w.run_to_idle(2000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.alarms_sent, 2, "initial alarm + one re-announce");
        assert_eq!(stats.alarms_suppressed, 1);
        let got = &w.node::<Sink>(h1).unwrap().got;
        let events: Vec<_> = got
            .iter()
            .filter_map(|(at, _, pkt)| match pkt.as_control() {
                Some(ControlMessage::LinkNotification { event, .. }) => Some((*at, *event)),
                _ => None,
            })
            .collect();
        assert_eq!(events.len(), 2);
        assert!(!events[0].1.up, "first alarm reports the down");
        assert!(events[1].1.up, "re-check reports the settled up state");
        assert_eq!(events[1].1.seq, events[0].1.seq + 1);
        // The re-announce waits out the full window from the first alarm.
        assert!(events[1].0 >= t0 + SimDuration::from_secs(1));
    }

    #[test]
    fn change_at_exact_window_boundary_not_suppressed() {
        // `elapsed == alarm_interval` is outside the suppression window
        // ("one alarm per second per port" permits the next second's).
        let (mut w, sw, _h1, _h2) = one_switch_world();
        let wid = w.wire_at(sw, p(2)).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(10);
        w.schedule_link_state(t0, wid, false);
        w.schedule_link_state(t0 + SimDuration::from_secs(1), wid, true);
        w.run_to_idle(2000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.alarms_sent, 2);
        assert_eq!(stats.alarms_suppressed, 0);
    }

    #[test]
    fn sustained_flapping_stays_rate_limited() {
        // A port flapping every 100 ms for 3 s: however wild the flap,
        // the port never exceeds one alarm per second (plus the initial
        // one), and the last announcement matches the settled state.
        let (mut w, sw, h1, _h2) = one_switch_world();
        let wid = w.wire_at(sw, p(2)).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(10);
        for i in 0..30u64 {
            let up = i % 2 == 1; // i = 0 ⇒ down, …, i = 29 ⇒ settles up.
            w.schedule_link_state(t0 + SimDuration::from_millis(100 * i), wid, up);
        }
        w.run_to_idle(5000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert!(
            stats.alarms_sent <= 4,
            "rate limit breached: {} alarms for a 3 s flap burst",
            stats.alarms_sent
        );
        assert!(stats.alarms_suppressed >= 26);
        let got = &w.node::<Sink>(h1).unwrap().got;
        let last = got
            .iter()
            .rev()
            .find_map(|(_, _, pkt)| match pkt.as_control() {
                Some(ControlMessage::LinkNotification { event, .. }) => Some(*event),
                _ => None,
            })
            .expect("at least one alarm escapes");
        assert!(last.up, "final announcement must reflect the settled state");
        // Alarm sequence numbers stay strictly increasing across the run.
        let seqs: Vec<u64> = got
            .iter()
            .filter_map(|(_, _, pkt)| match pkt.as_control() {
                Some(ControlMessage::LinkNotification { event, .. }) => Some(event.seq),
                _ => None,
            })
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[1] > w[0]),
            "seq not monotonic: {seqs:?}"
        );
    }

    #[test]
    fn alarm_allowed_after_interval() {
        let (mut w, sw, _h1, _h2) = one_switch_world();
        let wid = w.wire_at(sw, p(2)).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(10);
        w.schedule_link_state(t0, wid, false);
        w.schedule_link_state(t0 + SimDuration::from_secs(2), wid, true);
        w.run_to_idle(1000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.alarms_sent, 2);
        assert_eq!(stats.alarms_suppressed, 0);
    }

    #[test]
    fn notification_relay_decrements_ttl_and_skips_ingress() {
        // Chain: sinkA - sw1 - sw2 - sinkB. Alarm injected at sw1
        // relays to sw2 (ttl-1), then to sinkB (ttl-2).
        let mut w = World::new(0);
        let sw1 = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(1),
            8,
            DumbSwitchConfig::default(),
        )));
        let sw2 = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(2),
            8,
            DumbSwitchConfig::default(),
        )));
        let sa = w.add_node(Box::new(Sink::new()));
        let sb = w.add_node(Box::new(Sink::new()));
        w.wire(sa, p(1), sw1, p(1), LinkParams::ten_gig()).unwrap();
        w.wire(sw1, p(2), sw2, p(1), LinkParams::ten_gig()).unwrap();
        w.wire(sw2, p(2), sb, p(1), LinkParams::ten_gig()).unwrap();
        let event = LinkEvent {
            switch: SwitchId(7),
            port: p(3),
            up: false,
            seq: 1,
        };
        let pkt = Packet::control(
            MacAddr::BROADCAST,
            MacAddr::default(),
            Path::empty(),
            ControlMessage::LinkNotification { event, ttl: 5 },
        );
        w.inject(SimTime::ZERO, sw1, p(1), pkt);
        w.run_to_idle(1000);
        // sinkA must NOT get a copy (ingress port excluded).
        assert!(w.node::<Sink>(sa).unwrap().got.is_empty());
        let got = &w.node::<Sink>(sb).unwrap().got;
        assert_eq!(got.len(), 1);
        match got[0].2.as_control() {
            Some(ControlMessage::LinkNotification { ttl, .. }) => assert_eq!(*ttl, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ttl_zero_stops_relay() {
        let (mut w, sw, h1, h2) = one_switch_world();
        let event = LinkEvent {
            switch: SwitchId(9),
            port: p(1),
            up: false,
            seq: 1,
        };
        let pkt = Packet::control(
            MacAddr::BROADCAST,
            MacAddr::default(),
            Path::empty(),
            ControlMessage::LinkNotification { event, ttl: 0 },
        );
        w.inject(SimTime::ZERO, sw, p(1), pkt);
        w.run_to_idle(100);
        assert!(w.node::<Sink>(h1).unwrap().got.is_empty());
        assert!(w.node::<Sink>(h2).unwrap().got.is_empty());
    }

    /// Three hosts on one shadow-checked switch: every decision the
    /// production path takes is replayed through the byte-level
    /// reference interpreter, and clean traffic must never diverge.
    #[test]
    fn shadow_check_clean_traffic_never_diverges() {
        let mut w = World::new(0);
        let cfg = DumbSwitchConfig {
            shadow_check: true,
            ..DumbSwitchConfig::default()
        };
        let sw = w.add_node(Box::new(DumbSwitch::new(SwitchId(1), 8, cfg)));
        let h1 = w.add_node(Box::new(Sink::new()));
        let h2 = w.add_node(Box::new(Sink::new()));
        w.wire(sw, p(1), h1, p(1), LinkParams::ten_gig()).unwrap();
        w.wire(sw, p(2), h2, p(1), LinkParams::ten_gig()).unwrap();
        // A forward, an exhausted drop, and an ID query (whose reply is
        // itself forwarded, shadow-checked again).
        w.inject(
            SimTime::ZERO,
            sw,
            p(1),
            Packet::data(
                MacAddr::for_host(2),
                MacAddr::for_host(1),
                Path::from_ports([2]).unwrap(),
                0,
                0,
                64,
            ),
        );
        w.inject(
            SimTime::ZERO,
            sw,
            p(1),
            Packet::data(
                MacAddr::for_host(2),
                MacAddr::for_host(1),
                Path::empty(),
                0,
                1,
                64,
            ),
        );
        w.inject(
            SimTime::ZERO,
            sw,
            p(1),
            Packet::control(
                MacAddr::BROADCAST,
                MacAddr::for_host(1),
                Path::from_tags([Tag::ID_QUERY, Tag(1)]).unwrap(),
                ControlMessage::Probe {
                    origin: MacAddr::for_host(1),
                    forward_path: Path::from_tags([Tag::ID_QUERY, Tag(1)]).unwrap(),
                    probe_id: 7,
                },
            ),
        );
        w.run_to_idle(1000);
        let stats = w.node::<DumbSwitch>(sw).unwrap().stats();
        assert_eq!(stats.forwarded, 2, "data forward + ID reply forward");
        assert_eq!(stats.dropped_exhausted, 1);
        assert_eq!(stats.id_replies, 1);
        assert_eq!(
            stats.ref_divergence, 0,
            "reference model disagreed with the production path"
        );
        assert_eq!(stats.dropped_malformed, 0);
    }

    #[test]
    fn multi_hop_source_route_matches_paper_example() {
        // Reproduce §3.2: H4 → S4 → S2 → S5 → H5 with path 2-3-5-ø.
        let mut w = World::new(0);
        let s4 = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(4),
            8,
            DumbSwitchConfig::default(),
        )));
        let s2 = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(2),
            8,
            DumbSwitchConfig::default(),
        )));
        let s5 = w.add_node(Box::new(DumbSwitch::new(
            SwitchId(5),
            8,
            DumbSwitchConfig::default(),
        )));
        let h5 = w.add_node(Box::new(Sink::new()));
        // H4 injects directly at S4. Wiring: S4-2 ↔ S2-?, S2-3 ↔ S5-?,
        // S5-5 ↔ H5.
        w.wire(s4, p(2), s2, p(7), LinkParams::ten_gig()).unwrap();
        w.wire(s2, p(3), s5, p(7), LinkParams::ten_gig()).unwrap();
        w.wire(s5, p(5), h5, p(1), LinkParams::ten_gig()).unwrap();
        let pkt = Packet::data(
            MacAddr::for_host(5),
            MacAddr::for_host(4),
            Path::from_ports([2, 3, 5]).unwrap(),
            1,
            0,
            1000,
        );
        w.inject(SimTime::ZERO, s4, p(4), pkt);
        w.run_to_idle(100);
        let got = &w.node::<Sink>(h5).unwrap().got;
        assert_eq!(got.len(), 1);
        assert!(got[0].2.path.is_empty());
        assert_eq!(got[0].2.src, MacAddr::for_host(4));
    }
}
