//! Switch data planes: the DumbNet switch and the baselines.
//!
//! * [`dumb`] — the paper's contribution distilled: a switch with **no
//!   forwarding table and no configuration**. It does exactly three
//!   things (§3.1): forward packets by popping the head tag, monitor its
//!   own port state (broadcasting hop-limited notifications with
//!   duplicate suppression), and answer ID queries with a factory
//!   constant.
//! * [`stp`] — the conventional baseline used in Figure 11(b): an
//!   802.1D/RSTP-style spanning-tree switch with MAC learning, flooding,
//!   BPDU exchange and re-convergence on failure.
//!
//! Both implement [`Node`](dumbnet_sim::Node) and run on the same
//! emulated wires, so recovery-time comparisons are apples to apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dumb;
pub mod stp;

pub use dumb::{DumbSwitch, DumbSwitchConfig, DumbSwitchStats};
pub use stp::{StpConfig, StpSwitch};
