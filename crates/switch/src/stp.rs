//! The conventional-network baseline: a spanning-tree L2 switch.
//!
//! Figure 11(b) compares DumbNet's two-stage failure handling against
//! "the off-the-shelf Ethernet Spanning Tree Protocol". This module
//! implements a compact 802.1D-style bridge with the aggressive timers of
//! rapid STP: periodic BPDUs, root election by lowest bridge ID,
//! root/designated/alternate port roles, a forward-delay before a port
//! carries data, MAC learning, and flooding of unknown destinations over
//! the tree.
//!
//! Everything DumbNet removed from the switch is on display here: per-port
//! protocol state, a learned forwarding table, timers, and a multi-round
//! distributed convergence whose duration shows up directly as outage
//! time in the experiment.

use std::any::Any;
use std::collections::HashMap;

use dumbnet_packet::{ControlMessage, Packet, Payload};
use dumbnet_sim::{Ctx, Node};
use dumbnet_types::{MacAddr, Path, PortNo, SimDuration, SimTime};

/// Protocol timers. Defaults are RSTP-aggressive so the baseline is
/// *favourably* represented (classic 802.1D's 15 s forward delay would
/// make DumbNet look hundreds of times faster, not ~5×).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StpConfig {
    /// BPDU transmission interval.
    pub hello: SimDuration,
    /// Time a newly forwarding port stays silent (listening/learning).
    pub forward_delay: SimDuration,
    /// Age after which a port's peer information expires.
    pub max_age: SimDuration,
}

impl Default for StpConfig {
    fn default() -> StpConfig {
        StpConfig {
            hello: SimDuration::from_millis(50),
            forward_delay: SimDuration::from_millis(150),
            max_age: SimDuration::from_millis(200),
        }
    }
}

/// Port role in the spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Toward the root; forwards.
    Root,
    /// Away from the root (or host-facing); forwards.
    Designated,
    /// Redundant path; blocked.
    Alternate,
}

#[derive(Debug, Clone, Copy)]
struct PeerInfo {
    root: u64,
    cost: u32,
    sender: u64,
    heard_at: SimTime,
}

/// A spanning-tree learning switch.
#[derive(Debug)]
pub struct StpSwitch {
    id: u64,
    config: StpConfig,
    peer: HashMap<PortNo, PeerInfo>,
    roles: HashMap<PortNo, Role>,
    forwarding_since: HashMap<PortNo, SimTime>,
    mac_table: HashMap<MacAddr, PortNo>,
    root: u64,
    root_cost: u32,
    root_port: Option<PortNo>,
    /// Experiment counters.
    pub flooded: u64,
    /// Data packets forwarded via the MAC table.
    pub switched: u64,
    /// Data packets dropped on blocked or immature ports.
    pub blocked_drops: u64,
    /// Number of (re-)convergence events (root or root-port changes).
    pub reconvergences: u64,
}

impl StpSwitch {
    /// Timer token for the periodic hello tick.
    const HELLO_TOKEN: u64 = 1;

    /// Cost horizon: claims about a root farther than this are discarded.
    /// Stale root information otherwise counts to infinity between two
    /// surviving bridges after the root dies (each refreshes the other's
    /// outdated claim with an ever-growing cost); the horizon bounds that
    /// episode to `MAX_COST` hello rounds, like RIP's metric 16.
    const MAX_COST: u32 = 16;

    /// Creates a bridge with the given ID (lower ID wins root election).
    #[must_use]
    pub fn new(id: u64, config: StpConfig) -> StpSwitch {
        StpSwitch {
            id,
            config,
            peer: HashMap::new(),
            roles: HashMap::new(),
            forwarding_since: HashMap::new(),
            mac_table: HashMap::new(),
            root: id,
            root_cost: 0,
            root_port: None,
            flooded: 0,
            switched: 0,
            blocked_drops: 0,
            reconvergences: 0,
        }
    }

    /// The bridge's current idea of the root.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Whether `port` is currently in a forwarding role *and* past its
    /// forward delay.
    fn may_forward(&self, port: PortNo, now: SimTime) -> bool {
        matches!(self.roles.get(&port), Some(Role::Root | Role::Designated))
            && self
                .forwarding_since
                .get(&port)
                .is_some_and(|&since| now - since >= self.config.forward_delay)
    }

    fn recompute(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Expire stale peer info.
        let max_age = self.config.max_age;
        self.peer.retain(|_, info| now - info.heard_at <= max_age);

        // Root selection: the best (root, cost+1, sender, port) seen, or
        // ourselves.
        let mut best: Option<(u64, u32, u64, PortNo)> = None;
        for (&port, info) in &self.peer {
            let cand = (info.root, info.cost + 1, info.sender, port);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let (new_root, new_cost, new_root_port) = match best {
            Some((root, cost, _, port)) if root < self.id => (root, cost, Some(port)),
            _ => (self.id, 0, None),
        };
        let changed = new_root != self.root || new_root_port != self.root_port;
        if changed {
            self.reconvergences += 1;
            // Topology change: flush learned addresses.
            self.mac_table.clear();
        }
        self.root = new_root;
        self.root_cost = new_cost;
        self.root_port = new_root_port;

        // Port roles.
        let mut new_roles = HashMap::new();
        for port in ctx.wired_ports() {
            let role = if Some(port) == self.root_port {
                Role::Root
            } else {
                match self.peer.get(&port) {
                    None => Role::Designated, // Host port or silent peer.
                    Some(info) => {
                        let mine = (self.root, self.root_cost, self.id);
                        let theirs = (info.root, info.cost, info.sender);
                        if mine < theirs {
                            Role::Designated
                        } else {
                            Role::Alternate
                        }
                    }
                }
            };
            let was_forwarding =
                matches!(self.roles.get(&port), Some(Role::Root | Role::Designated));
            let is_forwarding = matches!(role, Role::Root | Role::Designated);
            if is_forwarding && !was_forwarding {
                self.forwarding_since.insert(port, now);
            } else if !is_forwarding {
                self.forwarding_since.remove(&port);
            }
            new_roles.insert(port, role);
        }
        self.roles = new_roles;
    }

    fn send_bpdus(&mut self, ctx: &mut Ctx<'_>) {
        let msg = ControlMessage::Bpdu {
            root: self.root,
            cost: self.root_cost,
            sender: self.id,
        };
        for port in ctx.wired_ports() {
            ctx.send(
                port,
                Packet::control(
                    MacAddr::BROADCAST,
                    MacAddr::default(),
                    Path::empty(),
                    msg.clone(),
                ),
            );
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet) {
        let now = ctx.now();
        if !self.may_forward(in_port, now) {
            self.blocked_drops += 1;
            return;
        }
        // Learn the source.
        self.mac_table.insert(pkt.src, in_port);
        match self.mac_table.get(&pkt.dst).copied() {
            Some(out) if out != in_port && self.may_forward(out, now) => {
                self.switched += 1;
                ctx.send(out, pkt);
            }
            Some(out) if out == in_port => {
                // Destination is behind the ingress port; drop.
            }
            _ => {
                self.flooded += 1;
                for port in ctx.wired_ports() {
                    if port != in_port && self.may_forward(port, now) {
                        ctx.send(port, pkt.clone());
                    }
                }
            }
        }
    }
}

impl Node for StpSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.recompute(ctx);
        self.send_bpdus(ctx);
        ctx.set_timer(self.config.hello, Self::HELLO_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet) {
        if let Payload::Control(ControlMessage::Bpdu { root, cost, sender }) = pkt.payload {
            if cost < Self::MAX_COST {
                self.peer.insert(
                    in_port,
                    PeerInfo {
                        root,
                        cost,
                        sender,
                        heard_at: ctx.now(),
                    },
                );
            } else {
                // Beyond the horizon: treat as no information.
                self.peer.remove(&in_port);
            }
            self.recompute(ctx);
            return;
        }
        self.handle_data(ctx, in_port, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == Self::HELLO_TOKEN {
            self.recompute(ctx);
            self.send_bpdus(ctx);
            ctx.set_timer(self.config.hello, Self::HELLO_TOKEN);
        }
    }

    fn on_link_change(&mut self, ctx: &mut Ctx<'_>, port: PortNo, up: bool) {
        if !up {
            // Carrier loss: hardware-fast expiry of the peer on that port.
            self.peer.remove(&port);
            self.roles.remove(&port);
            self.forwarding_since.remove(&port);
            self.mac_table.retain(|_, &mut p| p != port);
            self.recompute(ctx);
            self.send_bpdus(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_sim::{LinkParams, NodeAddr, World};

    struct Sink {
        got: Vec<(SimTime, u64)>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: PortNo, pkt: Packet) {
            if let Payload::Data { seq, .. } = pkt.payload {
                self.got.push((ctx.now(), seq));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn p(n: u8) -> PortNo {
        PortNo::new(n).unwrap()
    }

    fn data(dst: MacAddr, src: MacAddr, seq: u64) -> Packet {
        Packet::data(dst, src, Path::empty(), 0, seq, 200)
    }

    /// Triangle of three STP switches with a host (sink) on each of
    /// switches 1 and 2: redundant loops that plain flooding would melt.
    fn triangle() -> (World, Vec<NodeAddr>, NodeAddr, NodeAddr) {
        let mut w = World::new(0);
        let cfg = StpConfig::default();
        let s: Vec<NodeAddr> = (0..3)
            .map(|i| w.add_node(Box::new(StpSwitch::new(i as u64, cfg))))
            .collect();
        let ha = w.add_node(Box::new(Sink { got: vec![] }));
        let hb = w.add_node(Box::new(Sink { got: vec![] }));
        w.wire(s[0], p(1), s[1], p(1), LinkParams::ten_gig())
            .unwrap();
        w.wire(s[1], p(2), s[2], p(1), LinkParams::ten_gig())
            .unwrap();
        w.wire(s[0], p(2), s[2], p(2), LinkParams::ten_gig())
            .unwrap();
        w.wire(s[1], p(3), ha, p(1), LinkParams::ten_gig()).unwrap();
        w.wire(s[2], p(3), hb, p(1), LinkParams::ten_gig()).unwrap();
        (w, s, ha, hb)
    }

    fn warmup() -> SimTime {
        // Several hellos plus the forward delay.
        SimTime::ZERO + SimDuration::from_millis(500)
    }

    #[test]
    fn converges_on_lowest_id_root() {
        let (mut w, s, _, _) = triangle();
        w.run_until(warmup());
        for &sw in &s {
            assert_eq!(w.node::<StpSwitch>(sw).unwrap().root(), 0);
        }
    }

    #[test]
    fn blocks_exactly_one_triangle_link() {
        let (mut w, s, _, _) = triangle();
        w.run_until(warmup());
        let blocked: usize = s
            .iter()
            .map(|&sw| {
                let node = w.node::<StpSwitch>(sw).unwrap();
                node.roles
                    .values()
                    .filter(|r| matches!(r, Role::Alternate))
                    .count()
            })
            .sum();
        assert_eq!(blocked, 1, "a 3-cycle needs exactly one blocked port");
    }

    #[test]
    fn unicast_delivered_without_loop_storm() {
        let (mut w, s, _ha, hb) = triangle();
        w.run_until(warmup());
        // Host A (on s1 port 3) sends to host B's MAC (unknown → flood).
        let a_mac = MacAddr::for_host(100);
        let b_mac = MacAddr::for_host(200);
        w.inject(warmup(), s[1], p(3), data(b_mac, a_mac, 1));
        let before = w.stats().packets_sent;
        w.run_until(warmup() + SimDuration::from_millis(40));
        let got = &w.node::<Sink>(hb).unwrap().got;
        assert_eq!(got.len(), 1, "exactly one copy delivered");
        // No broadcast storm: bounded number of data transmissions.
        let sent = w.stats().packets_sent - before;
        assert!(sent < 50, "storm suspected: {sent} packets");
    }

    #[test]
    fn learns_and_switches_after_first_flood() {
        let (mut w, s, ha, _hb) = triangle();
        w.run_until(warmup());
        let a_mac = MacAddr::for_host(100);
        let b_mac = MacAddr::for_host(200);
        // A → B (flood teaches everyone where A is).
        w.inject(warmup(), s[1], p(3), data(b_mac, a_mac, 1));
        w.run_until(warmup() + SimDuration::from_millis(20));
        // B → A should now be switched, not flooded, at s2.
        let flooded_before = w.node::<StpSwitch>(s[2]).unwrap().flooded;
        w.inject(
            warmup() + SimDuration::from_millis(20),
            s[2],
            p(3),
            data(a_mac, b_mac, 2),
        );
        w.run_until(warmup() + SimDuration::from_millis(40));
        let sw2 = w.node::<StpSwitch>(s[2]).unwrap();
        assert_eq!(sw2.flooded, flooded_before, "reply must not flood");
        assert!(sw2.switched >= 1);
        assert_eq!(w.node::<Sink>(ha).unwrap().got.len(), 1);
    }

    #[test]
    fn recovers_after_tree_link_failure() {
        let (mut w, s, _ha, hb) = triangle();
        w.run_until(warmup());
        let a_mac = MacAddr::for_host(100);
        let b_mac = MacAddr::for_host(200);
        // Prime the path.
        w.inject(warmup(), s[1], p(3), data(b_mac, a_mac, 1));
        w.run_until(warmup() + SimDuration::from_millis(50));
        assert_eq!(w.node::<Sink>(hb).unwrap().got.len(), 1);
        // Cut the s1–s2 link (on the tree, since s0 is root the s1↔s2
        // link may be the blocked one; cut s1's root link instead: s0-s1).
        let wid = w.wire_at(s[0], p(1)).unwrap();
        let t_fail = warmup() + SimDuration::from_millis(100);
        w.schedule_link_state(t_fail, wid, false);
        // Give the protocol time to reconverge, then send again.
        let t_retry = t_fail + SimDuration::from_millis(600);
        w.inject(t_retry, s[1], p(3), data(b_mac, a_mac, 2));
        w.run_until(t_retry + SimDuration::from_millis(100));
        let got = &w.node::<Sink>(hb).unwrap().got;
        assert_eq!(got.len(), 2, "delivery must resume after reconvergence");
    }

    #[test]
    fn root_failure_elects_new_root() {
        // Kill every link of the root bridge: the survivors must elect
        // bridge 1 and keep forwarding among themselves.
        let (mut w, s, _ha, hb) = triangle();
        w.run_until(warmup());
        for &sw in &s {
            assert_eq!(w.node::<StpSwitch>(sw).unwrap().root(), 0);
        }
        let t_fail = warmup() + SimDuration::from_millis(50);
        for port in [p(1), p(2)] {
            let wid = w.wire_at(s[0], port).unwrap();
            w.schedule_link_state(t_fail, wid, false);
        }
        // Allow the count-to-horizon episode (≤16 hello rounds) to end.
        w.run_until(t_fail + SimDuration::from_millis(1_200));
        assert_eq!(w.node::<StpSwitch>(s[1]).unwrap().root(), 1);
        assert_eq!(w.node::<StpSwitch>(s[2]).unwrap().root(), 1);
        // Traffic between the survivors' hosts still flows.
        let t_send = t_fail + SimDuration::from_millis(1_400);
        w.inject(
            t_send,
            s[1],
            p(3),
            data(MacAddr::for_host(200), MacAddr::for_host(100), 9),
        );
        w.run_until(t_send + SimDuration::from_millis(50));
        assert!(
            w.node::<Sink>(hb)
                .unwrap()
                .got
                .iter()
                .any(|(_, seq)| *seq == 9),
            "post-election delivery failed"
        );
    }

    #[test]
    fn data_before_convergence_is_contained() {
        // Packets injected immediately (before forward delay) are
        // dropped rather than looped.
        let (mut w, s, _ha, hb) = triangle();
        let a_mac = MacAddr::for_host(100);
        let b_mac = MacAddr::for_host(200);
        w.inject(
            SimTime::ZERO + SimDuration::from_millis(1),
            s[1],
            p(3),
            data(b_mac, a_mac, 1),
        );
        w.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        assert!(w.node::<Sink>(hb).unwrap().got.is_empty());
        assert!(w.node::<StpSwitch>(s[1]).unwrap().blocked_drops >= 1);
    }
}
