//! Tenant topology views and tag-path verification.
//!
//! §6.1: the TopoCache can reveal *partial* topologies to applications,
//! and a *path verifier* checks application-supplied routes before they
//! enter the PathTable "to ensure that the application-generated routes
//! do not violate security policies". Both live here: a
//! [`TopologyView`] restricts which switches and hosts a tenant may use,
//! and [`trace_tag_path`] walks a tag path hop by hop against the real
//! topology, yielding the switches visited and the host reached.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use dumbnet_types::{DumbNetError, HostId, Path, Result, SwitchId};

use crate::graph::{Attachment, Topology};
use crate::route::Route;

/// The outcome of walking a tag path through the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrace {
    /// Switches visited, in order (one per consumed tag).
    pub switches: Vec<SwitchId>,
    /// The host the final tag delivers to, if any.
    pub delivered_to: Option<HostId>,
}

/// Walks `path` starting from `src`'s attachment switch, following each
/// port tag over up links, and reports where the packet goes.
///
/// This is the "Path Verify" operation of Table 2. ID-query tags are
/// permitted (they visit a switch without moving) so discovery probes can
/// be verified too.
///
/// # Errors
///
/// Returns [`DumbNetError::PathRejected`] when a tag names an unwired or
/// down port, and propagates unknown-host errors.
pub fn trace_tag_path(topo: &Topology, src: HostId, path: &Path) -> Result<PathTrace> {
    let src_info = topo.host(src)?;
    let mut cur = src_info.attached.switch;
    let mut switches = Vec::with_capacity(path.len());
    let mut delivered_to = None;
    for (ix, &tag) in path.tags().iter().enumerate() {
        switches.push(cur);
        if tag.is_id_query() {
            // The switch answers and consumes the tag without moving.
            continue;
        }
        let port = tag
            .as_port()
            .ok_or_else(|| DumbNetError::PathRejected(format!("tag #{ix} is not a port tag")))?;
        let info = topo.switch(cur)?;
        match info.attachment(port) {
            Some(Attachment::Link(lid)) => {
                let link = topo.link(lid)?;
                if !link.up {
                    return Err(DumbNetError::PathRejected(format!(
                        "tag #{ix}: link {} is down",
                        link.id
                    )));
                }
                let (_, remote) = link
                    .from_switch(cur)
                    .ok_or_else(|| DumbNetError::TopologyInvariant("bad link endpoints".into()))?;
                cur = remote.switch;
            }
            Some(Attachment::Host(h)) => {
                if ix + 1 != path.len() {
                    return Err(DumbNetError::PathRejected(format!(
                        "tag #{ix} delivers to {h} with {} tags left",
                        path.len() - ix - 1
                    )));
                }
                delivered_to = Some(h);
            }
            None => {
                return Err(DumbNetError::PathRejected(format!(
                    "tag #{ix}: port {cur}-{port} is unwired"
                )));
            }
        }
    }
    Ok(PathTrace {
        switches,
        delivered_to,
    })
}

/// A tenant's restricted view of the fabric (§6.1 network
/// virtualization): only the listed switches and hosts are usable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TopologyView {
    /// Switches the tenant may traverse. Empty = all switches allowed.
    pub switches: HashSet<SwitchId>,
    /// Hosts the tenant may address. Empty = all hosts allowed.
    pub hosts: HashSet<HostId>,
}

impl TopologyView {
    /// The unrestricted view.
    #[must_use]
    pub fn unrestricted() -> TopologyView {
        TopologyView::default()
    }

    /// A view restricted to the given switches and hosts.
    #[must_use]
    pub fn restricted<S, H>(switches: S, hosts: H) -> TopologyView
    where
        S: IntoIterator<Item = SwitchId>,
        H: IntoIterator<Item = HostId>,
    {
        TopologyView {
            switches: switches.into_iter().collect(),
            hosts: hosts.into_iter().collect(),
        }
    }

    /// Whether the view permits traversing a switch.
    #[must_use]
    pub fn permits_switch(&self, s: SwitchId) -> bool {
        self.switches.is_empty() || self.switches.contains(&s)
    }

    /// Whether the view permits addressing a host.
    #[must_use]
    pub fn permits_host(&self, h: HostId) -> bool {
        self.hosts.is_empty() || self.hosts.contains(&h)
    }

    /// Checks a switch-level route against the view.
    #[must_use]
    pub fn permits_route(&self, route: &Route) -> bool {
        route.switches().iter().all(|&s| self.permits_switch(s))
    }

    /// Fully verifies a tag path for a tenant: traces it against the real
    /// topology, then checks every visited switch and the delivery host
    /// against the view.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::PathRejected`] when the path escapes the
    /// view, does not terminate at a permitted host, or fails tracing.
    pub fn verify_tag_path(&self, topo: &Topology, src: HostId, path: &Path) -> Result<PathTrace> {
        if !self.permits_host(src) {
            return Err(DumbNetError::PathRejected(format!(
                "source {src} outside tenant view"
            )));
        }
        let trace = trace_tag_path(topo, src, path)?;
        if let Some(bad) = trace.switches.iter().find(|&&s| !self.permits_switch(s)) {
            return Err(DumbNetError::PathRejected(format!(
                "switch {bad} outside tenant view"
            )));
        }
        match trace.delivered_to {
            Some(h) if self.permits_host(h) => Ok(trace),
            Some(h) => Err(DumbNetError::PathRejected(format!(
                "destination {h} outside tenant view"
            ))),
            None => Err(DumbNetError::PathRejected(
                "path does not deliver to a host".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spath;
    use dumbnet_types::Tag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn testbed_path(src: u64, dst: u64) -> (Topology, Path) {
        let g = generators::testbed();
        let t = g.topology;
        let mut rng = StdRng::seed_from_u64(1);
        let (s, d) = (HostId(src), HostId(dst));
        let route = spath::shortest_route(
            &t,
            t.host(s).unwrap().attached.switch,
            t.host(d).unwrap().attached.switch,
            &mut rng,
        )
        .unwrap();
        let path = route.to_tag_path(&t, s, d).unwrap();
        (t, path)
    }

    #[test]
    fn trace_follows_correct_path() {
        let (t, path) = testbed_path(0, 26);
        let trace = trace_tag_path(&t, HostId(0), &path).unwrap();
        assert_eq!(trace.delivered_to, Some(HostId(26)));
        assert_eq!(trace.switches.len(), 3); // leaf, spine, leaf.
    }

    #[test]
    fn trace_rejects_unwired_port() {
        let (t, _) = testbed_path(0, 26);
        // Port 60 on the first leaf is unwired in the testbed.
        let bogus = Path::from_ports([60]).unwrap();
        assert!(matches!(
            trace_tag_path(&t, HostId(0), &bogus),
            Err(DumbNetError::PathRejected(_))
        ));
    }

    #[test]
    fn trace_rejects_early_host_delivery() {
        let (t, path) = testbed_path(0, 1); // Same-leaf pair: 1 tag.
                                            // Append a junk tag after the delivering tag.
        let longer = path.push(Tag(1)).unwrap();
        assert!(trace_tag_path(&t, HostId(0), &longer).is_err());
    }

    #[test]
    fn trace_rejects_down_link() {
        let g = generators::testbed();
        let mut t = g.topology;
        let mut rng = StdRng::seed_from_u64(2);
        let route = spath::shortest_route(
            &t,
            t.host(HostId(0)).unwrap().attached.switch,
            t.host(HostId(26)).unwrap().attached.switch,
            &mut rng,
        )
        .unwrap();
        let path = route.to_tag_path(&t, HostId(0), HostId(26)).unwrap();
        let sw = route.switches();
        let lid = t.link_between(sw[0], sw[1]).unwrap().id;
        t.set_link_state(lid, false).unwrap();
        assert!(trace_tag_path(&t, HostId(0), &path).is_err());
    }

    #[test]
    fn id_query_tags_traced_in_place() {
        let g = generators::testbed();
        let t = g.topology;
        // 0-<host port>-ø: query own switch then bounce to a neighbor host.
        let h0 = t.host(HostId(0)).unwrap();
        let h1 = t.host(HostId(1)).unwrap();
        assert_eq!(h0.attached.switch, h1.attached.switch);
        let path = Path::from_tags([Tag::ID_QUERY, Tag(h1.attached.port.get())]).unwrap();
        let trace = trace_tag_path(&t, HostId(0), &path).unwrap();
        assert_eq!(trace.delivered_to, Some(HostId(1)));
        assert_eq!(trace.switches.len(), 2);
        assert_eq!(trace.switches[0], trace.switches[1]);
    }

    #[test]
    fn view_blocks_foreign_switches_and_hosts() {
        let (t, path) = testbed_path(0, 26);
        let trace = trace_tag_path(&t, HostId(0), &path).unwrap();
        // View missing the spine switch used by the path.
        let spine = trace.switches[1];
        let view = TopologyView::restricted(
            t.switches().map(|s| s.id).filter(|&s| s != spine),
            t.hosts().map(|h| h.id),
        );
        assert!(view.verify_tag_path(&t, HostId(0), &path).is_err());
        // View missing the destination host.
        let view = TopologyView::restricted(
            t.switches().map(|s| s.id),
            t.hosts().map(|h| h.id).filter(|&h| h != HostId(26)),
        );
        assert!(view.verify_tag_path(&t, HostId(0), &path).is_err());
        // Unrestricted passes.
        let trace = TopologyView::unrestricted()
            .verify_tag_path(&t, HostId(0), &path)
            .unwrap();
        assert_eq!(trace.delivered_to, Some(HostId(26)));
    }

    #[test]
    fn view_blocks_foreign_source() {
        let (t, path) = testbed_path(0, 26);
        let view = TopologyView::restricted(
            t.switches().map(|s| s.id),
            [HostId(26)], // Source 0 not included.
        );
        assert!(view.verify_tag_path(&t, HostId(0), &path).is_err());
    }
}
