//! Topology model, generators and routing algorithms for DumbNet.
//!
//! This crate provides the graph substrate everything else stands on:
//!
//! * [`Topology`] — a mutable model of switches, hosts and links, with the
//!   port-level detail DumbNet needs (source routes are sequences of
//!   *output ports*, so the graph must know which port faces which
//!   neighbor).
//! * [`generators`] — constructors for the topologies used in the paper's
//!   evaluation: the 2×5 leaf-spine testbed, fat-trees, k-ary n-cube
//!   meshes (the "cube" of §7.2.1), and random regular graphs for
//!   irregular-topology experiments.
//! * [`edgemap`] — the canonical enumeration of directed flow-level
//!   edges (the wire↔edge mapping shared by the packet and flow planes).
//! * [`spath`] — BFS/Dijkstra shortest paths with randomized equal-cost
//!   tie-breaking (§4.3: "randomizes the choice for equal cost links").
//! * [`ksp`] — Yen's k-shortest loopless paths, used by the host
//!   TopoCache to extract the `k` paths the PathTable caches.
//! * [`pathgraph`] — the paper's Algorithm 1: primary path, `s`-step
//!   ε-good local detours, and a backup path computed with inflated
//!   primary-link costs.
//! * [`partition`] — cell assignment (pod-aware for fat-trees, balanced
//!   BFS for arbitrary graphs) for the sharded simulation engine.
//! * [`route`] — switch-level routes and their conversion to port-tag
//!   [`Path`](dumbnet_types::Path)s.
//! * [`views`] — filtered per-tenant topology views for the network
//!   virtualization extension (§6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edgemap;
pub mod generators;
pub mod graph;
pub mod ksp;
pub mod partition;
pub mod pathcache;
pub mod pathgraph;
pub mod route;
pub mod spath;
pub mod views;

pub use edgemap::{EdgeIx, EdgeKind, EdgeMap};
pub use graph::{Attachment, HostInfo, Link, SwitchInfo, Topology};
pub use ksp::k_shortest_routes;
pub use partition::{assign_cells, CellAssignment};
pub use pathcache::{RouteCache, RouteCacheStats};
pub use pathgraph::{PathGraph, PathGraphParams};
pub use route::Route;
pub use spath::{shortest_route, shortest_route_weighted, DistanceMap};
pub use views::TopologyView;
