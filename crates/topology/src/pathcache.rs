//! Seeded, deterministic path caches with explicit invalidation.
//!
//! The controller recomputes a shortest route (Dijkstra over the whole
//! fabric) for every hello, heartbeat, patch flood, and path reply — at
//! fat-tree k=20 scale that dominates emulator wall-clock. The caches
//! here memoize those computations per topology *epoch*, with two
//! invalidation rules:
//!
//! * **Link down** — surgical: only cached routes that traverse the dead
//!   edge are evicted ([`RouteCache::invalidate_edge`]). Routes avoiding
//!   the edge stay valid; cached *unreachable* verdicts also stay valid,
//!   because removing capacity cannot create connectivity.
//! * **Link up** — global: the epoch is bumped and the cache cleared
//!   ([`RouteCache::bump_epoch`]), because restored capacity can shorten
//!   any route and revive unreachable pairs.
//!
//! Determinism is the design constraint. The paper's load-balancing
//! trick randomizes equal-cost choices, so a naive cache that consumed
//! the caller's RNG on miss would make results depend on *which calls
//! miss* — i.e. on call order. Instead every `(src, dst)` pair derives a
//! private RNG seed by mixing the cache seed, the epoch, and the pair
//! ([`RouteCache::pair_seed`]): the cached route equals the on-demand
//! route no matter when, in what order, or on which worker thread it
//! was computed. ECMP spreading across *pairs* (and across epochs) is
//! preserved; repeated queries of one pair within an epoch are stable —
//! which is exactly what a cache means.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dumbnet_types::SwitchId;

use crate::graph::Topology;
use crate::route::Route;
use crate::spath;

/// Splitmix64 finalizer: decorrelates structured (seed, epoch, pair)
/// inputs into independent RNG seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Cache effectiveness counters, named so consumers can't transpose
/// them the way an anonymous `(u64, u64)` invites.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran Dijkstra (including precomputed pairs).
    pub misses: u64,
}

/// A memo of shortest routes keyed `(src, dst)` within one topology
/// epoch. `None` values cache unreachability.
#[derive(Debug, Clone)]
pub struct RouteCache {
    seed: u64,
    epoch: u64,
    routes: HashMap<(SwitchId, SwitchId), Option<Route>>,
    /// Cache effectiveness counters (hits, misses) for experiments.
    pub hits: u64,
    /// Misses (each one Dijkstra run).
    pub misses: u64,
}

impl RouteCache {
    /// Creates an empty cache. `seed` fixes the ECMP tie-break stream;
    /// two caches with the same seed agree on every route.
    #[must_use]
    pub fn new(seed: u64) -> RouteCache {
        RouteCache {
            seed,
            epoch: 0,
            routes: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The current topology epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Effectiveness counters as named fields.
    #[must_use]
    pub fn stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Number of cached entries (including cached unreachability).
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The derived RNG seed for one pair in the current epoch — the
    /// reason cached and on-demand answers coincide (see module docs).
    #[must_use]
    pub fn pair_seed(&self, src: SwitchId, dst: SwitchId) -> u64 {
        splitmix(
            self.seed
                ^ splitmix(self.epoch)
                ^ splitmix(src.get().wrapping_mul(2) ^ 1)
                ^ splitmix(dst.get().wrapping_mul(2)),
        )
    }

    fn compute(&self, topo: &Topology, src: SwitchId, dst: SwitchId) -> Option<Route> {
        let mut rng = StdRng::seed_from_u64(self.pair_seed(src, dst));
        spath::shortest_route(topo, src, dst, &mut rng)
    }

    /// The shortest route from `src` to `dst`, memoized. `None` means
    /// unreachable (also memoized).
    pub fn route(&mut self, topo: &Topology, src: SwitchId, dst: SwitchId) -> Option<Route> {
        if let Some(cached) = self.routes.get(&(src, dst)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let route = self.compute(topo, src, dst);
        self.routes.insert((src, dst), route.clone());
        route
    }

    /// Link-recovery invalidation: restored capacity can improve any
    /// route, so the epoch advances and everything is dropped (including
    /// cached-unreachable verdicts, which may now be stale).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.routes.clear();
    }

    /// Link-failure invalidation: evicts exactly the routes that
    /// traverse the `a`–`b` edge (either direction). Cached routes that
    /// avoid the edge — and cached unreachability — remain valid.
    /// Returns the number of entries evicted.
    pub fn invalidate_edge(&mut self, a: SwitchId, b: SwitchId) -> usize {
        let before = self.routes.len();
        self.routes.retain(|_, route| {
            !route.as_ref().is_some_and(|r| {
                r.switches()
                    .windows(2)
                    .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
            })
        });
        before - self.routes.len()
    }

    /// Precomputes routes for `pairs` on a `std::thread` worker pool.
    ///
    /// Because every pair's tie-break RNG is derived from
    /// [`RouteCache::pair_seed`], the result is identical for any thread
    /// count (including 1) and any chunk assignment; threads only change
    /// wall-clock, never answers. Pairs already cached are skipped.
    pub fn precompute(&mut self, topo: &Topology, pairs: &[(SwitchId, SwitchId)], threads: usize) {
        let todo: Vec<(SwitchId, SwitchId)> = pairs
            .iter()
            .copied()
            .filter(|p| !self.routes.contains_key(p))
            .collect();
        if todo.is_empty() {
            return;
        }
        self.misses += todo.len() as u64;
        let workers = threads.max(1).min(todo.len());
        if workers == 1 {
            for (src, dst) in todo {
                let route = self.compute(topo, src, dst);
                self.routes.insert((src, dst), route);
            }
            return;
        }
        let chunk = todo.len().div_ceil(workers);
        type Computed = Vec<((SwitchId, SwitchId), Option<Route>)>;
        let computed: Vec<Computed> = std::thread::scope(|scope| {
            let cache = &*self;
            let handles: Vec<_> = todo
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&(src, dst)| ((src, dst), cache.compute(topo, src, dst)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("route worker panicked"))
                .collect()
        });
        for part in computed {
            self.routes.extend(part);
        }
    }

    /// Precomputes all ordered pairs over `switches` (all-pairs warm-up
    /// for small fabrics; quadratic, so callers gate it by size).
    pub fn precompute_all_pairs(&mut self, topo: &Topology, switches: &[SwitchId], threads: usize) {
        let pairs: Vec<(SwitchId, SwitchId)> = switches
            .iter()
            .flat_map(|&a| switches.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .collect();
        self.precompute(topo, &pairs, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn testbed() -> (Topology, Vec<SwitchId>) {
        let g = generators::testbed();
        let switches: Vec<SwitchId> = g.topology.switches().map(|s| s.id).collect();
        (g.topology, switches)
    }

    #[test]
    fn cached_equals_on_demand_regardless_of_order() {
        let (topo, sw) = testbed();
        // Two caches, same seed, queried in opposite orders: every
        // answer must agree.
        let mut fwd = RouteCache::new(42);
        let mut rev = RouteCache::new(42);
        let mut pairs: Vec<(SwitchId, SwitchId)> = Vec::new();
        for &a in &sw {
            for &b in &sw {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        let forward: Vec<_> = pairs.iter().map(|&(a, b)| fwd.route(&topo, a, b)).collect();
        let backward: Vec<_> = {
            let mut rp: Vec<_> = pairs
                .iter()
                .rev()
                .map(|&(a, b)| ((a, b), rev.route(&topo, a, b)))
                .collect();
            rp.reverse();
            rp.into_iter().map(|(_, r)| r).collect()
        };
        assert_eq!(forward, backward);
        // And a repeat query hits the cache with the same answer.
        let (a, b) = pairs[0];
        assert_eq!(fwd.route(&topo, a, b), forward[0]);
        assert!(fwd.hits > 0);
    }

    #[test]
    fn precompute_matches_on_demand_for_any_thread_count() {
        let (topo, sw) = testbed();
        let mut on_demand = RouteCache::new(7);
        let mut pooled1 = RouteCache::new(7);
        let mut pooled4 = RouteCache::new(7);
        pooled1.precompute_all_pairs(&topo, &sw, 1);
        pooled4.precompute_all_pairs(&topo, &sw, 4);
        for &a in &sw {
            for &b in &sw {
                if a == b {
                    continue;
                }
                let want = on_demand.route(&topo, a, b);
                assert_eq!(pooled1.route(&topo, a, b), want);
                assert_eq!(pooled4.route(&topo, a, b), want);
            }
        }
        // Precomputed entries must be hits, not recomputations.
        assert_eq!(pooled1.hits, pooled4.hits);
        assert!(pooled1.hits >= (sw.len() * (sw.len() - 1)) as u64);
    }

    #[test]
    fn link_down_evicts_only_crossing_routes() {
        let (mut topo, sw) = testbed();
        let mut cache = RouteCache::new(3);
        cache.precompute_all_pairs(&topo, &sw, 1);
        let filled = cache.len();
        // Pick an edge some cached route actually uses.
        let used_edge = (0..sw.len())
            .flat_map(|i| (0..sw.len()).map(move |j| (i, j)))
            .filter(|(i, j)| i != j)
            .find_map(|(i, j)| {
                let r = cache.route(&topo, sw[i], sw[j])?;
                r.switches().windows(2).next().map(|w| (w[0], w[1]))
            })
            .expect("some multi-hop route");
        let evicted = cache.invalidate_edge(used_edge.0, used_edge.1);
        assert!(evicted > 0, "the route using the edge must go");
        assert!(
            cache.len() < filled,
            "eviction must shrink the cache, not clear it"
        );
        assert!(!cache.is_empty(), "surgical eviction, not a full clear");
        // Recomputed routes against the degraded topology avoid the
        // edge.
        let link = topo
            .link_between(used_edge.0, used_edge.1)
            .map(|l| l.id)
            .expect("edge exists");
        topo.set_link_state(link, false).expect("link flips");
        let epoch_before = cache.epoch();
        for &a in &sw {
            for &b in &sw {
                if a == b {
                    continue;
                }
                if let Some(r) = cache.route(&topo, a, b) {
                    assert!(
                        !r.switches()
                            .windows(2)
                            .any(|w| (w[0] == used_edge.0 && w[1] == used_edge.1)
                                || (w[0] == used_edge.1 && w[1] == used_edge.0)),
                        "recomputed route must avoid the dead edge"
                    );
                }
            }
        }
        assert_eq!(cache.epoch(), epoch_before, "link down must not bump epoch");
    }

    #[test]
    fn link_up_bumps_epoch_and_clears() {
        let (topo, sw) = testbed();
        let mut cache = RouteCache::new(5);
        cache.precompute_all_pairs(&topo, &sw, 1);
        assert!(!cache.is_empty());
        let seed_before = cache.pair_seed(sw[0], sw[1]);
        cache.bump_epoch();
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 1);
        assert_ne!(
            cache.pair_seed(sw[0], sw[1]),
            seed_before,
            "new epoch must rotate the ECMP tie-break stream"
        );
        // Still answers after the clear.
        assert!(cache.route(&topo, sw[0], sw[1]).is_some());
    }

    #[test]
    fn unreachable_is_cached_too() {
        let g = generators::testbed();
        let mut topo = g.topology;
        let switches: Vec<SwitchId> = topo.switches().map(|s| s.id).collect();
        // Cut every link touching the first leaf to isolate it.
        let cut: Vec<_> = topo
            .links()
            .filter(|l| l.a.switch == switches[0] || l.b.switch == switches[0])
            .map(|l| l.id)
            .collect();
        for l in cut {
            topo.set_link_state(l, false).unwrap();
        }
        let mut cache = RouteCache::new(9);
        assert!(cache.route(&topo, switches[0], switches[1]).is_none());
        assert!(cache.route(&topo, switches[0], switches[1]).is_none());
        assert_eq!(cache.misses, 1, "second lookup must hit the None entry");
        assert_eq!(cache.hits, 1);
    }
}
