//! Yen's k-shortest loopless paths.
//!
//! The host agent's TopoCache computes "the k shortest paths from src to
//! dst and randomly chooses one as the path" (§5.2). The PathTable caches
//! all k for flowlet-based load balancing. This module provides that
//! computation at switch granularity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use dumbnet_types::SwitchId;

use crate::graph::Topology;
use crate::route::Route;

/// Deterministic Dijkstra from `src` to `dst` that avoids banned edges
/// and banned intermediate nodes. Ties break toward lower switch IDs so
/// Yen's spur enumeration is stable.
fn constrained_shortest(
    topo: &Topology,
    src: SwitchId,
    dst: SwitchId,
    banned_edges: &HashSet<(SwitchId, SwitchId)>,
    banned_nodes: &HashSet<SwitchId>,
) -> Option<Vec<SwitchId>> {
    let n = topo.switch_count();
    if src.get() as usize >= n || dst.get() as usize >= n {
        return None;
    }
    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<SwitchId>> = vec![None; n];
    dist[src.get() as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.get() as usize] {
            continue;
        }
        if u == dst {
            break;
        }
        let mut nexts: Vec<SwitchId> = topo.neighbors(u).map(|(_, v, _)| v).collect();
        nexts.sort();
        nexts.dedup();
        for v in nexts {
            if banned_nodes.contains(&v) || banned_edges.contains(&(u, v)) {
                continue;
            }
            let nd = d + 1;
            if nd < dist[v.get() as usize] {
                dist[v.get() as usize] = nd;
                prev[v.get() as usize] = Some(u);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    if dist[dst.get() as usize] == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.get() as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Computes up to `k` shortest loopless switch routes from `src` to
/// `dst`, ordered by non-decreasing hop count (Yen's algorithm).
///
/// Returns fewer than `k` routes when the graph does not contain that
/// many distinct simple paths, and an empty vector when `dst` is
/// unreachable.
///
/// # Examples
///
/// ```
/// use dumbnet_topology::{generators, k_shortest_routes};
///
/// let g = generators::leaf_spine(2, 2, 0, 8);
/// let leaves = g.group("leaf");
/// let routes = k_shortest_routes(&g.topology, leaves[0], leaves[1], 4);
/// // Two spines give exactly two 2-hop paths.
/// assert_eq!(routes.len(), 2);
/// assert!(routes.iter().all(|r| r.link_hops() == 2));
/// ```
#[must_use]
pub fn k_shortest_routes(topo: &Topology, src: SwitchId, dst: SwitchId, k: usize) -> Vec<Route> {
    if k == 0 {
        return Vec::new();
    }
    let no_edges = HashSet::new();
    let no_nodes = HashSet::new();
    let Some(first) = constrained_shortest(topo, src, dst, &no_edges, &no_nodes) else {
        return Vec::new();
    };
    let mut accepted: Vec<Vec<SwitchId>> = vec![first];
    // Candidate set keyed by path to avoid duplicates; BinaryHeap of
    // Reverse((len, path)) gives shortest-first extraction with stable
    // lexicographic tie-breaking.
    let mut candidates: BinaryHeap<Reverse<(usize, Vec<SwitchId>)>> = BinaryHeap::new();
    let mut seen: HashSet<Vec<SwitchId>> = accepted.iter().cloned().collect();

    while accepted.len() < k {
        let last = accepted.last().expect("non-empty").clone();
        // Spur from every node of the previous accepted path. A
        // single-node path (src == dst: same-leaf hosts, single-switch
        // fabrics) has no spur edges; `saturating_sub` keeps the range
        // empty instead of underflowing.
        for spur_ix in 0..last.len().saturating_sub(1) {
            let spur_node = last[spur_ix];
            let root = &last[..=spur_ix];
            let mut banned_edges: HashSet<(SwitchId, SwitchId)> = HashSet::new();
            for p in accepted.iter().chain(candidates.iter().map(|r| &r.0 .1)) {
                if p.len() > spur_ix && p[..=spur_ix] == *root {
                    if let (Some(&a), Some(&b)) = (p.get(spur_ix), p.get(spur_ix + 1)) {
                        banned_edges.insert((a, b));
                        banned_edges.insert((b, a));
                    }
                }
            }
            let banned_nodes: HashSet<SwitchId> = root[..spur_ix].iter().copied().collect();
            if let Some(spur) =
                constrained_shortest(topo, spur_node, dst, &banned_edges, &banned_nodes)
            {
                let mut total = root[..spur_ix].to_vec();
                total.extend(spur);
                if seen.insert(total.clone()) {
                    candidates.push(Reverse((total.len(), total)));
                }
            }
        }
        match candidates.pop() {
            Some(Reverse((_, next))) => accepted.push(next),
            None => break,
        }
    }
    accepted
        .into_iter()
        .filter_map(|p| Route::new(p).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Topology;

    #[test]
    fn single_path_graph_returns_one() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let c = t.add_switch(4);
        t.connect_auto(a, b).unwrap();
        t.connect_auto(b, c).unwrap();
        let routes = k_shortest_routes(&t, a, c, 5);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].switches(), &[a, b, c]);
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        assert!(k_shortest_routes(&t, a, b, 3).is_empty());
        assert!(k_shortest_routes(&t, a, b, 0).is_empty());
    }

    #[test]
    fn routes_are_sorted_simple_and_distinct() {
        let g = generators::fat_tree(4, 0, None);
        let e = g.group("edge");
        let routes = k_shortest_routes(&g.topology, e[0], e[7], 8);
        assert!(!routes.is_empty());
        for w in routes.windows(2) {
            assert!(w[0].link_hops() <= w[1].link_hops());
        }
        let set: std::collections::HashSet<_> =
            routes.iter().map(|r| r.switches().to_vec()).collect();
        assert_eq!(set.len(), routes.len(), "duplicates returned");
        for r in &routes {
            assert!(r.is_simple(), "{r} has a loop");
            assert!(r.is_valid_in(&g.topology));
        }
    }

    #[test]
    fn cross_pod_fat_tree_has_four_ecmp_paths() {
        // k=4: between edges in different pods there are 4 shortest
        // (4-hop) paths, one per core.
        let g = generators::fat_tree(4, 0, None);
        let e = g.group("edge");
        let routes = k_shortest_routes(&g.topology, e[0], e[7], 4);
        assert_eq!(routes.len(), 4);
        assert!(routes.iter().all(|r| r.link_hops() == 4));
    }

    #[test]
    fn longer_detours_found_after_ecmp_exhausted() {
        let g = generators::leaf_spine(2, 3, 0, 8);
        let leaves = g.group("leaf");
        let routes = k_shortest_routes(&g.topology, leaves[0], leaves[1], 6);
        // 2 two-hop paths (via each spine), then 4 four-hop detours
        // (via the other leaf and both spines in either order).
        assert!(routes.len() >= 4, "got {}", routes.len());
        assert_eq!(routes[0].link_hops(), 2);
        assert_eq!(routes[1].link_hops(), 2);
        assert!(routes[2].link_hops() >= 4);
    }

    #[test]
    fn src_equals_dst() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let routes = k_shortest_routes(&t, a, a, 3);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].switches(), &[a]);
    }

    #[test]
    fn single_switch_fabric_with_k_greater_than_one() {
        // Regression: the spur loop once computed `0..last.len() - 1`
        // with unsigned arithmetic; asking for k > 1 routes between
        // hosts on the same (single) switch reaches the spur loop with a
        // one-node path and must not underflow.
        let mut t = Topology::new();
        let s = t.add_switch(8);
        t.add_host_auto(s).unwrap();
        t.add_host_auto(s).unwrap();
        for k in 1..=8 {
            let routes = k_shortest_routes(&t, s, s, k);
            assert_eq!(routes.len(), 1, "k={k}");
            assert_eq!(routes[0].switches(), &[s]);
        }
    }

    #[test]
    fn same_leaf_pair_in_leaf_spine() {
        // Same-leaf src/dst in a real generator topology: the only
        // simple switch-route is the leaf itself, for any k.
        let g = generators::leaf_spine(2, 2, 4, 8);
        let leaves = g.group("leaf");
        let routes = k_shortest_routes(&g.topology, leaves[0], leaves[0], 4);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].switches(), &[leaves[0]]);
    }
}
