//! Topology generators for the paper's evaluation settings.
//!
//! * [`leaf_spine`] — the testbed (§7): 2 spine + 5 leaf switches,
//!   hosts on leaves, one uplink from every leaf to every spine.
//! * [`fat_tree`] — the canonical k-ary fat-tree used in Figure 8(a).
//! * [`cube`] — n-dimensional mesh ("cube" in §7.2.1); Figure 8 uses an
//!   8×8×8 cube and controller placements at a corner or the center.
//! * [`random_regular`] — jellyfish-style random r-regular switch graph
//!   for irregular-topology experiments.
//!
//! All generators return a [`Generated`] bundle: the [`Topology`] plus
//! named switch groups ("spine", "leaf", "core", …) so experiments can
//! address layers without re-deriving them.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use dumbnet_types::SwitchId;

use crate::graph::Topology;

/// A generated topology plus named switch groups.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The topology itself.
    pub topology: Topology,
    /// Named switch groups, e.g. `"spine"`, `"leaf"`, `"core"`, `"agg"`,
    /// `"edge"`.
    pub groups: BTreeMap<String, Vec<SwitchId>>,
}

impl Generated {
    /// The switches in a named group (empty slice if absent).
    #[must_use]
    pub fn group(&self, name: &str) -> &[SwitchId] {
        self.groups.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Builds a leaf-spine fabric.
///
/// Every leaf has one uplink to every spine; `hosts_per_leaf` hosts hang
/// off each leaf. `ports` is the switch radix (the paper's testbed used
/// 64-port switches; experiments that sweep radix pass other values).
///
/// # Panics
///
/// Panics if the radix cannot accommodate the requested wiring — that is
/// a programming error in experiment setup, not a runtime condition.
#[must_use]
pub fn leaf_spine(spines: usize, leaves: usize, hosts_per_leaf: usize, ports: u8) -> Generated {
    let mut topo = Topology::new();
    let spine_ids: Vec<SwitchId> = (0..spines).map(|_| topo.add_switch(ports)).collect();
    let leaf_ids: Vec<SwitchId> = (0..leaves).map(|_| topo.add_switch(ports)).collect();
    for &leaf in &leaf_ids {
        for &spine in &spine_ids {
            topo.connect_auto(leaf, spine)
                .expect("leaf-spine radix too small for uplinks");
        }
        for _ in 0..hosts_per_leaf {
            topo.add_host_auto(leaf)
                .expect("leaf-spine radix too small for hosts");
        }
    }
    let mut groups = BTreeMap::new();
    groups.insert("spine".to_owned(), spine_ids);
    groups.insert("leaf".to_owned(), leaf_ids);
    Generated {
        topology: topo,
        groups,
    }
}

/// Builds the paper's testbed: 2 spines, 5 leaves, 27 hosts spread over
/// the leaves (5-6-6-5-5), 64-port switches, as described in §7.
#[must_use]
pub fn testbed() -> Generated {
    let mut g = leaf_spine(2, 5, 0, 64);
    let leaves: Vec<SwitchId> = g.group("leaf").to_vec();
    // 27 hosts over 5 leaves.
    let spread = [6usize, 6, 5, 5, 5];
    for (leaf, &n) in leaves.iter().zip(spread.iter()) {
        for _ in 0..n {
            g.topology.add_host_auto(*leaf).expect("testbed radix");
        }
    }
    g
}

/// Builds a k-ary fat-tree (k even): `k` pods of `k/2` edge and `k/2`
/// aggregation switches, `(k/2)²` cores, and `hosts_per_edge` hosts per
/// edge switch (pass `k/2` for the canonical full fat-tree).
///
/// Total switches: `5k²/4`. All switches have radix `k` unless `ports`
/// overrides it with a larger value (extra ports stay unwired — used by
/// discovery-cost experiments, which probe *all* ports).
///
/// # Panics
///
/// Panics if `k` is odd or zero.
#[must_use]
pub fn fat_tree(k: usize, hosts_per_edge: usize, ports: Option<u8>) -> Generated {
    assert!(k > 0 && k.is_multiple_of(2), "fat-tree arity must be even");
    let radix = ports.unwrap_or_else(|| u8::try_from(k).expect("k fits in a port byte"));
    assert!(
        usize::from(radix) >= k,
        "radix must be at least k to wire a k-ary fat-tree"
    );
    let half = k / 2;
    let mut topo = Topology::new();
    let cores: Vec<SwitchId> = (0..half * half).map(|_| topo.add_switch(radix)).collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut edges = Vec::with_capacity(k * half);
    let mut pods: Vec<Vec<SwitchId>> = Vec::with_capacity(k);
    for _pod in 0..k {
        let pod_aggs: Vec<SwitchId> = (0..half).map(|_| topo.add_switch(radix)).collect();
        let pod_edges: Vec<SwitchId> = (0..half).map(|_| topo.add_switch(radix)).collect();
        // Edge ↔ agg full bipartite within the pod.
        for &e in &pod_edges {
            for &a in &pod_aggs {
                topo.connect_auto(e, a).expect("fat-tree pod wiring");
            }
        }
        // Agg i connects to cores [i*half, (i+1)*half).
        for (i, &a) in pod_aggs.iter().enumerate() {
            for &c in &cores[i * half..(i + 1) * half] {
                topo.connect_auto(a, c).expect("fat-tree core wiring");
            }
        }
        // Hosts on edges.
        for &e in &pod_edges {
            for _ in 0..hosts_per_edge {
                topo.add_host_auto(e).expect("fat-tree host wiring");
            }
        }
        let mut pod_members = pod_aggs.clone();
        pod_members.extend_from_slice(&pod_edges);
        pods.push(pod_members);
        aggs.extend(pod_aggs);
        edges.extend(pod_edges);
    }
    let mut groups = BTreeMap::new();
    groups.insert("core".to_owned(), cores);
    groups.insert("agg".to_owned(), aggs);
    groups.insert("edge".to_owned(), edges);
    for (pod, members) in pods.into_iter().enumerate() {
        groups.insert(format!("pod{pod}"), members);
    }
    Generated {
        topology: topo,
        groups,
    }
}

/// Builds an n-dimensional mesh ("cube"). `dims` gives the side length in
/// each dimension; switches sit at every lattice point and connect to
/// their immediate neighbors (no wraparound, so corners exist — Figure 8
/// distinguishes corner vs. center controller placement).
///
/// `hosts_per_switch` hosts are attached to every switch. `ports` is the
/// radix; Figure 8(b) sweeps it while holding the link structure fixed.
///
/// # Panics
///
/// Panics if `dims` is empty, any dimension is zero, or the radix cannot
/// fit `2·dims.len() + hosts_per_switch` attachments.
#[must_use]
pub fn cube(dims: &[usize], hosts_per_switch: usize, ports: u8) -> Generated {
    assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0), "bad dims");
    let n: usize = dims.iter().product();
    let needed = 2 * dims.len() + hosts_per_switch;
    assert!(
        usize::from(ports) >= needed,
        "radix {ports} cannot fit {needed} attachments"
    );
    let mut topo = Topology::new();
    let ids: Vec<SwitchId> = (0..n).map(|_| topo.add_switch(ports)).collect();
    // Strides for mixed-radix coordinates.
    let mut strides = vec![1usize; dims.len()];
    for i in 1..dims.len() {
        strides[i] = strides[i - 1] * dims[i - 1];
    }
    let coord = |ix: usize, d: usize| (ix / strides[d]) % dims[d];
    for ix in 0..n {
        for (d, &stride) in strides.iter().enumerate() {
            if coord(ix, d) + 1 < dims[d] {
                let nb = ix + stride;
                topo.connect_auto(ids[ix], ids[nb]).expect("cube wiring");
            }
        }
    }
    for &id in &ids {
        for _ in 0..hosts_per_switch {
            topo.add_host_auto(id).expect("cube host wiring");
        }
    }
    let corner = vec![ids[0]];
    let center_ix: usize = dims
        .iter()
        .enumerate()
        .map(|(d, &len)| (len / 2) * strides[d])
        .sum();
    let center = vec![ids[center_ix]];
    let mut groups = BTreeMap::new();
    groups.insert("all".to_owned(), ids);
    groups.insert("corner".to_owned(), corner);
    groups.insert("center".to_owned(), center);
    Generated {
        topology: topo,
        groups,
    }
}

/// Builds a random `r`-regular switch graph of `n` switches (jellyfish
/// style) with `hosts_per_switch` hosts each, using pairing with retries.
///
/// The result may occasionally be slightly irregular (a few switches one
/// short of `r`) when the random pairing gets stuck; this mirrors real
/// jellyfish construction and is fine for the experiments that use it.
/// The graph is always **connected**: stub matching can strand islands
/// (which would make the fabric unusable — discovery, for one, can only
/// map the controller's component), so a repair pass reconnects
/// components with degree-preserving edge rewires.
///
/// # Panics
///
/// Panics if `n·r` is odd or the radix is too small.
#[must_use]
pub fn random_regular<R: Rng>(
    n: usize,
    r: usize,
    hosts_per_switch: usize,
    ports: u8,
    rng: &mut R,
) -> Generated {
    assert!((n * r).is_multiple_of(2), "n*r must be even");
    assert!(
        usize::from(ports) >= r + hosts_per_switch,
        "radix too small"
    );
    // Stub matching over an abstract edge list: each switch contributes
    // r stubs; repeatedly shuffle and pair, rejecting self-loops and
    // duplicate edges. Materialization happens only after the repair
    // pass, because repair needs to *remove* edges.
    let mut degree = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _attempt in 0..200 {
        let mut stubs: Vec<usize> = Vec::new();
        for (ix, &d) in degree.iter().enumerate() {
            for _ in 0..r.saturating_sub(d) {
                stubs.push(ix);
            }
        }
        if stubs.is_empty() {
            break;
        }
        stubs.shuffle(rng);
        let mut progressed = false;
        let mut i = 0;
        while i + 1 < stubs.len() {
            let (a, b) = (stubs[i], stubs[i + 1]);
            let key = (a.min(b), a.max(b));
            if a != b && !seen.contains(&key) && degree[a] < r && degree[b] < r {
                seen.insert(key);
                edges.push(key);
                degree[a] += 1;
                degree[b] += 1;
                progressed = true;
            }
            i += 2;
        }
        if !progressed {
            break;
        }
    }
    reconnect_components(n, r, &mut degree, &mut edges);
    let mut topo = Topology::new();
    let ids: Vec<SwitchId> = (0..n).map(|_| topo.add_switch(ports)).collect();
    for &(a, b) in &edges {
        topo.connect_auto(ids[a], ids[b]).expect("regular wiring");
    }
    for &id in &ids {
        for _ in 0..hosts_per_switch {
            topo.add_host_auto(id).expect("regular host wiring");
        }
    }
    let mut groups = BTreeMap::new();
    groups.insert("all".to_owned(), ids);
    Generated {
        topology: topo,
        groups,
    }
}

/// Merges disconnected components left behind by stalled stub matching.
///
/// Deterministic (no randomness): components are merged smallest-index
/// first, preferring a plain edge between two under-degree switches and
/// falling back to a degree-preserving 2-edge rewire — remove an edge
/// inside each component, cross-connect the endpoints — when both sides
/// are saturated.
fn reconnect_components(n: usize, r: usize, degree: &mut [usize], edges: &mut Vec<(usize, usize)>) {
    loop {
        // Label components by union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for &(a, b) in edges.iter() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        let comp: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        let root = comp[0];
        let Some(outsider) = (0..n).find(|&i| comp[i] != root) else {
            return; // Single component: done.
        };
        let other = comp[outsider];
        let spare_in = |c: usize| (0..n).find(|&i| comp[i] == c && degree[i] < r);
        if let (Some(a), Some(b)) = (spare_in(root), spare_in(other)) {
            // Both sides have spare stubs: a direct cross edge (cannot
            // duplicate — the endpoints were in different components).
            edges.push((a.min(b), a.max(b)));
            degree[a] += 1;
            degree[b] += 1;
            continue;
        }
        let edge_in = |edges: &[(usize, usize)], c: usize| {
            edges
                .iter()
                .position(|&(a, b)| comp[a] == c && comp[b] == c)
        };
        match (edge_in(edges, root), edge_in(edges, other)) {
            (Some(ix), Some(iy)) => {
                // Degree-preserving rewire: (x,y) + (u,v) → (x,u) + (y,v).
                let (x, y) = edges[ix];
                let (u, v) = edges[iy];
                let (hi, lo) = (ix.max(iy), ix.min(iy));
                edges.swap_remove(hi);
                edges.swap_remove(lo);
                edges.push((x.min(u), x.max(u)));
                edges.push((y.min(v), y.max(v)));
            }
            (Some(ix), None) => {
                // `other` is edgeless (isolated switches): splice the
                // first one into a root-component edge.
                let (x, y) = edges.swap_remove(ix);
                edges.push((x.min(outsider), x.max(outsider)));
                edges.push((y.min(outsider), y.max(outsider)));
                degree[outsider] += 2;
            }
            (None, Some(iy)) => {
                // Root component is edgeless instead: splice node 0 in.
                let (u, v) = edges.swap_remove(iy);
                edges.push((0, u));
                edges.push((0, v));
                degree[0] += 2;
            }
            (None, None) => {
                // Two edgeless components: both under-degree, so the
                // spare-stub branch above must have handled them.
                unreachable!("edgeless components always have spare stubs");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spath;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn testbed_matches_paper() {
        let g = testbed();
        let t = &g.topology;
        assert_eq!(t.switch_count(), 7);
        assert_eq!(t.host_count(), 27);
        assert_eq!(t.link_count(), 10); // 5 leaves × 2 spines.
        t.check_invariants().unwrap();
        // Every leaf reaches every other leaf in 2 hops.
        let leaves = g.group("leaf");
        for &a in leaves {
            for &b in leaves {
                if a != b {
                    assert_eq!(spath::hop_distance(t, a, b), Some(2));
                }
            }
        }
    }

    #[test]
    fn fat_tree_k4_structure() {
        let g = fat_tree(4, 2, None);
        let t = &g.topology;
        assert_eq!(g.group("core").len(), 4);
        assert_eq!(g.group("agg").len(), 8);
        assert_eq!(g.group("edge").len(), 8);
        assert_eq!(t.switch_count(), 20); // 5k²/4 for k=4.
        assert_eq!(t.host_count(), 16); // k³/4.
        assert_eq!(t.link_count(), 32); // 16 edge-agg + 16 agg-core.
        t.check_invariants().unwrap();
        // Edge-to-edge across pods is 4 hops.
        let e = g.group("edge");
        assert_eq!(spath::hop_distance(t, e[0], e[7]), Some(4));
        // Within a pod: 2 hops.
        assert_eq!(spath::hop_distance(t, e[0], e[1]), Some(2));
    }

    #[test]
    fn fat_tree_radix_override() {
        let g = fat_tree(4, 0, Some(64));
        assert!(g.topology.switches().all(|s| s.ports == 64));
        // Cores and aggs are fully wired at degree k; edges carry only
        // their k/2 uplinks when no hosts are attached.
        for &c in g.group("core").iter().chain(g.group("agg")) {
            assert_eq!(g.topology.switch(c).unwrap().degree(), 4);
        }
        for &e in g.group("edge") {
            assert_eq!(g.topology.switch(e).unwrap().degree(), 2);
        }
    }

    #[test]
    fn cube_8x8x8_structure() {
        let g = cube(&[8, 8, 8], 0, 64);
        let t = &g.topology;
        assert_eq!(t.switch_count(), 512);
        // Mesh links: 3 * 8*8*7.
        assert_eq!(t.link_count(), 3 * 8 * 8 * 7);
        // Corner has degree 3, center degree 6.
        let corner = g.group("corner")[0];
        let center = g.group("center")[0];
        assert_eq!(t.switch(corner).unwrap().degree(), 3);
        assert_eq!(t.switch(center).unwrap().degree(), 6);
        // Corner-to-opposite-corner distance is 21 hops.
        let far = SwitchId::new(511);
        assert_eq!(spath::hop_distance(t, corner, far), Some(21));
    }

    #[test]
    fn cube_center_placement_shortens_eccentricity() {
        let g = cube(&[5, 5, 5], 0, 16);
        let t = &g.topology;
        let ecc = |s: SwitchId| {
            spath::distances(t, s)
                .reachable()
                .map(|(_, d)| d)
                .max()
                .unwrap()
        };
        assert!(ecc(g.group("center")[0]) < ecc(g.group("corner")[0]));
    }

    #[test]
    fn random_regular_mostly_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(40, 4, 1, 8, &mut rng);
        let t = &g.topology;
        t.check_invariants().unwrap();
        assert_eq!(t.switch_count(), 40);
        assert_eq!(t.host_count(), 40);
        let shortfall: usize = t
            .switches()
            .map(|s| 5usize.saturating_sub(s.degree()))
            .sum();
        assert!(shortfall <= 2, "too irregular: shortfall {shortfall}");
    }

    #[test]
    fn one_dimensional_cube_is_a_line() {
        let g = cube(&[4], 1, 4);
        assert_eq!(g.topology.link_count(), 3);
        assert_eq!(
            spath::hop_distance(&g.topology, g.group("corner")[0], SwitchId::new(3)),
            Some(3)
        );
    }
}
