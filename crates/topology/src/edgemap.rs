//! Canonical enumeration of a fabric's directed flow-level edges.
//!
//! Both simulation planes model the same physical fabric: the packet
//! engine as bidirectional wires with per-direction queues, the
//! flow-level solver as directed capacitated edges. This module defines
//! the *shared* wire↔edge mapping both sides index through — one
//! directed edge per trunk-link direction plus one uplink and one
//! downlink edge per host attachment — so a chaos injection or a
//! controller quarantine patch aimed at a wire can be routed to exactly
//! the flow edges that model it.
//!
//! The enumeration order is part of the determinism contract: edges are
//! numbered by walking [`Topology::links`] in declaration order (the
//! `a→b` direction before `b→a`), then hosts in id order (uplink before
//! downlink). Flow-solver bottleneck tie-breaks resolve by edge index,
//! so this order must stay stable for byte-identical reports.

use std::collections::BTreeMap;

use dumbnet_types::{HostId, SwitchId};

use crate::graph::Topology;
use crate::route::Route;

/// Index of a directed flow-level edge in the canonical enumeration.
///
/// Dense, starting at zero; converts 1:1 to the flow simulator's edge
/// ids when the edges are materialized in enumeration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeIx(pub usize);

/// What a directed flow edge models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// One direction of a switch-to-switch trunk.
    Trunk {
        /// Transmitting switch.
        from: SwitchId,
        /// Receiving switch.
        to: SwitchId,
    },
    /// A host's uplink (host → edge switch).
    HostUp(HostId),
    /// A host's downlink (edge switch → host).
    HostDown(HostId),
}

/// The canonical wire↔edge mapping of one topology.
#[derive(Debug, Clone, Default)]
pub struct EdgeMap {
    /// Directed trunk edges: (from, to) → index.
    trunk: BTreeMap<(SwitchId, SwitchId), EdgeIx>,
    /// Host → uplink edge index.
    host_up: BTreeMap<HostId, EdgeIx>,
    /// Host → downlink edge index.
    host_down: BTreeMap<HostId, EdgeIx>,
    /// Reverse view: index → model element, in enumeration order.
    kinds: Vec<EdgeKind>,
}

impl EdgeMap {
    /// Enumerates the directed edges of `topo` (up links only — a link
    /// administratively down at build time has no flow-level image;
    /// runtime failures are modeled by zeroing capacity instead).
    ///
    /// Parallel links between the same switch pair merge into one edge
    /// pair, mirroring the packet plane's single-wire-per-port model.
    #[must_use]
    pub fn build(topo: &Topology) -> EdgeMap {
        let mut map = EdgeMap::default();
        for link in topo.links().filter(|l| l.up) {
            let (a, b) = (link.a.switch, link.b.switch);
            map.intern_trunk(a, b);
            map.intern_trunk(b, a);
        }
        for h in topo.hosts() {
            let up = map.alloc(EdgeKind::HostUp(h.id));
            map.host_up.insert(h.id, up);
            let down = map.alloc(EdgeKind::HostDown(h.id));
            map.host_down.insert(h.id, down);
        }
        map
    }

    fn alloc(&mut self, kind: EdgeKind) -> EdgeIx {
        let ix = EdgeIx(self.kinds.len());
        self.kinds.push(kind);
        ix
    }

    fn intern_trunk(&mut self, from: SwitchId, to: SwitchId) {
        if !self.trunk.contains_key(&(from, to)) {
            let ix = self.alloc(EdgeKind::Trunk { from, to });
            self.trunk.insert((from, to), ix);
        }
    }

    /// Number of directed edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the topology had no links or hosts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// What edge `ix` models.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    #[must_use]
    pub fn kind(&self, ix: EdgeIx) -> EdgeKind {
        self.kinds[ix.0]
    }

    /// The directed trunk edge `a → b`, if those switches are adjacent.
    #[must_use]
    pub fn trunk(&self, a: SwitchId, b: SwitchId) -> Option<EdgeIx> {
        self.trunk.get(&(a, b)).copied()
    }

    /// A host's uplink (host → switch) edge.
    #[must_use]
    pub fn host_up(&self, h: HostId) -> Option<EdgeIx> {
        self.host_up.get(&h).copied()
    }

    /// A host's downlink (switch → host) edge.
    #[must_use]
    pub fn host_down(&self, h: HostId) -> Option<EdgeIx> {
        self.host_down.get(&h).copied()
    }

    /// All edges in enumeration order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeIx, EdgeKind)> + '_ {
        self.kinds.iter().enumerate().map(|(i, &k)| (EdgeIx(i), k))
    }

    /// All directed trunk edges, ordered by (from, to).
    pub fn trunks(&self) -> impl Iterator<Item = ((SwitchId, SwitchId), EdgeIx)> + '_ {
        self.trunk.iter().map(|(&k, &v)| (k, v))
    }

    /// The edge path a flow from `src` to `dst` takes along `route`
    /// (access uplink, trunk hops, access downlink).
    ///
    /// Returns `None` when the route uses a switch pair with no edge
    /// (a route that predates this map); a *failed* link still has its
    /// edge — failures are expressed as zero capacity, not absence.
    #[must_use]
    pub fn route_path(&self, src: HostId, dst: HostId, route: &Route) -> Option<Vec<EdgeIx>> {
        let mut edges = Vec::with_capacity(route.link_hops() + 2);
        edges.push(self.host_up(src)?);
        for w in route.switches().windows(2) {
            edges.push(self.trunk(w[0], w[1])?);
        }
        edges.push(self.host_down(dst)?);
        Some(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn enumeration_covers_links_then_hosts() {
        let g = generators::testbed();
        let map = EdgeMap::build(&g.topology);
        let links = g.topology.links().filter(|l| l.up).count();
        let hosts = g.topology.host_count();
        assert_eq!(map.len(), links * 2 + hosts * 2);
        // Trunk directions come first, in link declaration order.
        let first_link = g.topology.links().find(|l| l.up).unwrap();
        let (a, b) = (first_link.a.switch, first_link.b.switch);
        assert_eq!(map.trunk(a, b), Some(EdgeIx(0)));
        assert_eq!(map.trunk(b, a), Some(EdgeIx(1)));
        // Host edges follow, uplink before downlink, ascending host id.
        let h0 = g.topology.hosts().next().unwrap().id;
        assert_eq!(map.host_up(h0), Some(EdgeIx(links * 2)));
        assert_eq!(map.host_down(h0), Some(EdgeIx(links * 2 + 1)));
    }

    #[test]
    fn kinds_round_trip() {
        let g = generators::testbed();
        let map = EdgeMap::build(&g.topology);
        for (ix, kind) in map.edges() {
            match kind {
                EdgeKind::Trunk { from, to } => assert_eq!(map.trunk(from, to), Some(ix)),
                EdgeKind::HostUp(h) => assert_eq!(map.host_up(h), Some(ix)),
                EdgeKind::HostDown(h) => assert_eq!(map.host_down(h), Some(ix)),
            }
        }
    }

    #[test]
    fn route_path_walks_up_trunks_down() {
        let g = generators::testbed();
        let topo = &g.topology;
        let map = EdgeMap::build(topo);
        let src = topo.hosts().next().unwrap().id;
        let dst = topo.hosts().last().unwrap().id;
        let sa = topo.host(src).unwrap().attached.switch;
        let sb = topo.host(dst).unwrap().attached.switch;
        let spine = g.group("spine")[0];
        let route = Route::new(vec![sa, spine, sb]).unwrap();
        let path = map.route_path(src, dst, &route).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], map.host_up(src).unwrap());
        assert_eq!(path[1], map.trunk(sa, spine).unwrap());
        assert_eq!(path[2], map.trunk(spine, sb).unwrap());
        assert_eq!(path[3], map.host_down(dst).unwrap());
    }
}
