//! The port-level topology graph.
//!
//! DumbNet routes are sequences of *output ports*, so the graph tracks not
//! just which switches are adjacent but through which port pair each link
//! runs. Switches and hosts use dense IDs (`SwitchId(0..s)`,
//! `HostId(0..h)`) so lookups are vector indexing.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dumbnet_types::{DumbNetError, HostId, LinkId, MacAddr, PortId, PortNo, Result, SwitchId};

/// What a switch port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attachment {
    /// The port is one end of a switch-to-switch link.
    Link(LinkId),
    /// The port faces a host.
    Host(HostId),
}

/// A switch and its port map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchInfo {
    /// The switch's unique identity (replies to ID-query tags).
    pub id: SwitchId,
    /// Number of physical ports.
    pub ports: u8,
    /// `wiring[p.index()]` describes what port `p` connects to.
    wiring: Vec<Option<Attachment>>,
}

impl SwitchInfo {
    /// What the given port is wired to, if anything.
    #[must_use]
    pub fn attachment(&self, port: PortNo) -> Option<Attachment> {
        self.wiring.get(port.index()).copied().flatten()
    }

    /// Iterates over `(port, attachment)` for all wired ports.
    pub fn wired_ports(&self) -> impl Iterator<Item = (PortNo, Attachment)> + '_ {
        self.wiring.iter().enumerate().filter_map(|(ix, a)| {
            a.map(|att| (PortNo::from_index(ix).expect("stored index valid"), att))
        })
    }

    /// First unwired port, if any (used by generators and tests).
    #[must_use]
    pub fn free_port(&self) -> Option<PortNo> {
        self.wiring
            .iter()
            .position(Option::is_none)
            .and_then(PortNo::from_index)
    }

    /// Number of wired ports.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.wiring.iter().filter(|a| a.is_some()).count()
    }
}

/// A host and its attachment point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HostInfo {
    /// Dense host identity.
    pub id: HostId,
    /// The host's MAC address (derived from the ID).
    pub mac: MacAddr,
    /// The switch port the host hangs off.
    pub attached: PortId,
}

/// An undirected switch-to-switch link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// Link identity.
    pub id: LinkId,
    /// One endpoint.
    pub a: PortId,
    /// The other endpoint.
    pub b: PortId,
    /// Administrative/physical state; down links are invisible to routing.
    pub up: bool,
}

impl Link {
    /// Given one endpoint switch, returns `(local_port, remote_end)`.
    ///
    /// Returns `None` if `sw` is not an endpoint of this link.
    #[must_use]
    pub fn from_switch(&self, sw: SwitchId) -> Option<(PortNo, PortId)> {
        if self.a.switch == sw {
            Some((self.a.port, self.b))
        } else if self.b.switch == sw {
            Some((self.b.port, self.a))
        } else {
            None
        }
    }
}

/// The fabric topology: switches, hosts, and links with port detail.
///
/// # Examples
///
/// Building the 5-switch example of Figure 1 by hand:
///
/// ```
/// use dumbnet_topology::Topology;
/// use dumbnet_types::{PortNo, SwitchId};
///
/// let mut topo = Topology::new();
/// let s = (0..5).map(|_| topo.add_switch(16)).collect::<Vec<_>>();
/// topo.connect(s[2], 1, s[0], 1).unwrap(); // S3-1 ↔ S1-1 in paper numbering
/// let h = topo.add_host(s[2], PortNo::new(9).unwrap()).unwrap();
/// assert_eq!(topo.host(h).unwrap().attached.switch, s[2]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    switches: Vec<SwitchInfo>,
    hosts: Vec<HostInfo>,
    links: Vec<Link>,
    /// MAC → host index, for reverse lookup.
    mac_index: HashMap<MacAddr, HostId>,
}

impl Topology {
    /// Creates an empty topology.
    #[must_use]
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a switch with `ports` physical ports and returns its ID.
    ///
    /// Port counts above 254 are clamped: the one-byte tag space cannot
    /// address more ports.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        let id = SwitchId::new(self.switches.len() as u64);
        let ports = ports.min(0xFE);
        self.switches.push(SwitchInfo {
            id,
            ports,
            wiring: vec![None; usize::from(ports)],
        });
        id
    }

    /// Adds a host on `(switch, port)` with the default MAC derived from
    /// its dense ID, and returns the ID.
    ///
    /// # Errors
    ///
    /// Fails if the switch or port does not exist or the port is wired.
    pub fn add_host(&mut self, switch: SwitchId, port: PortNo) -> Result<HostId> {
        let mac = MacAddr::for_host(self.hosts.len() as u64);
        self.add_host_with_mac(switch, port, mac)
    }

    /// Adds a host on `(switch, port)` with an explicit MAC address —
    /// used when reconstructing a topology from discovery results, where
    /// host identities are externally given.
    ///
    /// # Errors
    ///
    /// Fails if the switch or port does not exist, the port is wired, or
    /// the MAC is already present.
    pub fn add_host_with_mac(
        &mut self,
        switch: SwitchId,
        port: PortNo,
        mac: MacAddr,
    ) -> Result<HostId> {
        if self.mac_index.contains_key(&mac) {
            return Err(DumbNetError::TopologyInvariant(format!(
                "duplicate host MAC {mac}"
            )));
        }
        let id = HostId::new(self.hosts.len() as u64);
        let slot = self.port_slot_mut(switch, port)?;
        if slot.is_some() {
            return Err(DumbNetError::PortInUse(
                PortId::new(switch, port).to_string(),
            ));
        }
        *slot = Some(Attachment::Host(id));
        let info = HostInfo {
            id,
            mac,
            attached: PortId::new(switch, port),
        };
        self.hosts.push(info);
        self.mac_index.insert(mac, id);
        Ok(id)
    }

    /// Adds a host on the first free port of `switch`.
    ///
    /// # Errors
    ///
    /// Fails if the switch is unknown or has no free ports.
    pub fn add_host_auto(&mut self, switch: SwitchId) -> Result<HostId> {
        let port = self
            .switch(switch)?
            .free_port()
            .ok_or_else(|| DumbNetError::PortInUse(format!("{switch}-*")))?;
        self.add_host(switch, port)
    }

    /// Connects two switch ports with a link; ports are raw numbers for
    /// generator convenience.
    ///
    /// # Errors
    ///
    /// Fails on invalid/unknown ports, already-wired ports, or self-loops.
    pub fn connect(&mut self, sa: SwitchId, pa: u8, sb: SwitchId, pb: u8) -> Result<LinkId> {
        let pa = PortNo::try_new(pa)?;
        let pb = PortNo::try_new(pb)?;
        self.connect_ports(PortId::new(sa, pa), PortId::new(sb, pb))
    }

    /// Connects two switch ports with a link.
    ///
    /// # Errors
    ///
    /// Fails on unknown ports, already-wired ports, or self-loops
    /// (`a.switch == b.switch` is allowed only on distinct ports — the
    /// discovery algorithm must cope with loopback cables, so we permit
    /// them).
    pub fn connect_ports(&mut self, a: PortId, b: PortId) -> Result<LinkId> {
        if a == b {
            return Err(DumbNetError::TopologyInvariant(format!(
                "cannot wire port {a} to itself"
            )));
        }
        // Validate both before mutating either.
        if self.port_slot(a.switch, a.port)?.is_some() {
            return Err(DumbNetError::PortInUse(a.to_string()));
        }
        if self.port_slot(b.switch, b.port)?.is_some() {
            return Err(DumbNetError::PortInUse(b.to_string()));
        }
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link { id, a, b, up: true });
        *self.port_slot_mut(a.switch, a.port)? = Some(Attachment::Link(id));
        *self.port_slot_mut(b.switch, b.port)? = Some(Attachment::Link(id));
        Ok(id)
    }

    /// Connects two switches using each side's first free port.
    ///
    /// # Errors
    ///
    /// Fails if either switch lacks a free port.
    pub fn connect_auto(&mut self, sa: SwitchId, sb: SwitchId) -> Result<LinkId> {
        let pa = self
            .switch(sa)?
            .free_port()
            .ok_or_else(|| DumbNetError::PortInUse(format!("{sa}-*")))?;
        let pb = self
            .switch(sb)?
            .free_port()
            .ok_or_else(|| DumbNetError::PortInUse(format!("{sb}-*")))?;
        self.connect_ports(PortId::new(sa, pa), PortId::new(sb, pb))
    }

    /// Number of switches.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of links (regardless of state).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks up a switch.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::UnknownSwitch`] for out-of-range IDs.
    pub fn switch(&self, id: SwitchId) -> Result<&SwitchInfo> {
        self.switches
            .get(id.get() as usize)
            .ok_or(DumbNetError::UnknownSwitch(id.get()))
    }

    /// Looks up a host.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::UnknownHost`] for out-of-range IDs.
    pub fn host(&self, id: HostId) -> Result<&HostInfo> {
        self.hosts
            .get(id.get() as usize)
            .ok_or(DumbNetError::UnknownHost(id.get()))
    }

    /// Looks up a host by MAC address.
    #[must_use]
    pub fn host_by_mac(&self, mac: MacAddr) -> Option<&HostInfo> {
        self.mac_index
            .get(&mac)
            .and_then(|&id| self.hosts.get(id.get() as usize))
    }

    /// Looks up a link.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::UnknownLink`] for out-of-range IDs.
    pub fn link(&self, id: LinkId) -> Result<&Link> {
        self.links
            .get(id.index())
            .ok_or(DumbNetError::UnknownLink(id.get()))
    }

    /// Iterates over all switches.
    pub fn switches(&self) -> impl Iterator<Item = &SwitchInfo> {
        self.switches.iter()
    }

    /// Iterates over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = &HostInfo> {
        self.hosts.iter()
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Sets a link up or down. Returns the previous state.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::UnknownLink`] for out-of-range IDs.
    pub fn set_link_state(&mut self, id: LinkId, up: bool) -> Result<bool> {
        let link = self
            .links
            .get_mut(id.index())
            .ok_or(DumbNetError::UnknownLink(id.get()))?;
        Ok(std::mem::replace(&mut link.up, up))
    }

    /// The link between two switches, if one exists (first match for
    /// multi-link pairs).
    #[must_use]
    pub fn link_between(&self, a: SwitchId, b: SwitchId) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| (l.a.switch == a && l.b.switch == b) || (l.a.switch == b && l.b.switch == a))
    }

    /// The link attached to `(switch, port)`, if that port is a trunk.
    #[must_use]
    pub fn link_at(&self, port: PortId) -> Option<&Link> {
        match self.attachment(port)? {
            Attachment::Link(id) => self.links.get(id.index()),
            Attachment::Host(_) => None,
        }
    }

    /// What `(switch, port)` is wired to.
    #[must_use]
    pub fn attachment(&self, port: PortId) -> Option<Attachment> {
        self.switches
            .get(port.switch.get() as usize)
            .and_then(|s| s.attachment(port.port))
    }

    /// Up-link neighbors of a switch: `(out_port, neighbor, link)`.
    ///
    /// Down links are skipped — this is the routing view.
    pub fn neighbors(&self, sw: SwitchId) -> impl Iterator<Item = (PortNo, SwitchId, LinkId)> + '_ {
        self.switches
            .get(sw.get() as usize)
            .into_iter()
            .flat_map(move |info| {
                info.wired_ports().filter_map(move |(port, att)| match att {
                    Attachment::Link(lid) => {
                        let link = self.links.get(lid.index())?;
                        if !link.up {
                            return None;
                        }
                        let (_, remote) = link.from_switch(sw)?;
                        Some((port, remote.switch, lid))
                    }
                    Attachment::Host(_) => None,
                })
            })
    }

    /// Hosts attached to a switch: `(port, host)`.
    pub fn hosts_on(&self, sw: SwitchId) -> impl Iterator<Item = (PortNo, HostId)> + '_ {
        self.switches
            .get(sw.get() as usize)
            .into_iter()
            .flat_map(|info| {
                info.wired_ports().filter_map(|(port, att)| match att {
                    Attachment::Host(h) => Some((port, h)),
                    Attachment::Link(_) => None,
                })
            })
    }

    /// The output port on `from` that reaches `to` over an up link, if
    /// any. Used when converting switch routes to tag paths.
    #[must_use]
    pub fn port_towards(&self, from: SwitchId, to: SwitchId) -> Option<PortNo> {
        self.neighbors(from)
            .find(|&(_, n, _)| n == to)
            .map(|(p, _, _)| p)
    }

    /// Checks structural invariants; used by tests and after applying
    /// topology patches.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::TopologyInvariant`] describing the first
    /// violation found.
    pub fn check_invariants(&self) -> Result<()> {
        for (ix, link) in self.links.iter().enumerate() {
            if link.id.index() != ix {
                return Err(DumbNetError::TopologyInvariant(format!(
                    "link {ix} stored under wrong id {}",
                    link.id
                )));
            }
            for end in [link.a, link.b] {
                match self.attachment(end) {
                    Some(Attachment::Link(l)) if l == link.id => {}
                    other => {
                        return Err(DumbNetError::TopologyInvariant(format!(
                            "link {} endpoint {end} wired to {other:?}",
                            link.id
                        )))
                    }
                }
            }
        }
        for host in &self.hosts {
            match self.attachment(host.attached) {
                Some(Attachment::Host(h)) if h == host.id => {}
                other => {
                    return Err(DumbNetError::TopologyInvariant(format!(
                        "host {} attachment {} wired to {other:?}",
                        host.id, host.attached
                    )))
                }
            }
        }
        Ok(())
    }

    /// Structural equality ignoring host MAC index internals: same
    /// switches (port counts), hosts (attachments) and up-links.
    ///
    /// Used to validate that discovery reconstructed the real topology.
    #[must_use]
    pub fn same_structure(&self, other: &Topology) -> bool {
        if self.switches.len() != other.switches.len() || self.hosts.len() != other.hosts.len() {
            return false;
        }
        let key = |t: &Topology| {
            let mut links: Vec<(PortId, PortId)> = t
                .links
                .iter()
                .filter(|l| l.up)
                .map(|l| if l.a <= l.b { (l.a, l.b) } else { (l.b, l.a) })
                .collect();
            links.sort();
            let mut hosts: Vec<(MacAddr, PortId)> =
                t.hosts.iter().map(|h| (h.mac, h.attached)).collect();
            hosts.sort();
            (links, hosts)
        };
        key(self) == key(other)
    }

    fn port_slot(&self, sw: SwitchId, port: PortNo) -> Result<&Option<Attachment>> {
        let info = self.switch(sw)?;
        info.wiring
            .get(port.index())
            .ok_or(DumbNetError::InvalidPort(port.get()))
    }

    fn port_slot_mut(&mut self, sw: SwitchId, port: PortNo) -> Result<&mut Option<Attachment>> {
        let info = self
            .switches
            .get_mut(sw.get() as usize)
            .ok_or(DumbNetError::UnknownSwitch(sw.get()))?;
        info.wiring
            .get_mut(port.index())
            .ok_or(DumbNetError::InvalidPort(port.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 1 topology from the paper: five switches, the
    /// controller C3 on S3 port 9, hosts as drawn.
    fn figure1() -> (Topology, Vec<SwitchId>, Vec<HostId>) {
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..5).map(|_| t.add_switch(12)).collect();
        // Links (1-based switch names in the paper => s[i-1] here):
        // S3-1 ↔ S1-1, S3-2 ↔ S2-1 (paper fig edge labels vary; ports
        // chosen to match the §3.2 example where they matter).
        t.connect(s[2], 1, s[0], 1).unwrap();
        t.connect(s[2], 2, s[1], 1).unwrap();
        t.connect(s[0], 2, s[3], 1).unwrap();
        t.connect(s[1], 2, s[3], 3).unwrap();
        t.connect(s[1], 3, s[4], 1).unwrap();
        t.connect(s[3], 2, s[4], 2).unwrap();
        let hosts = vec![
            t.add_host(s[2], PortNo::new(9).unwrap()).unwrap(), // C3
            t.add_host(s[0], PortNo::new(5).unwrap()).unwrap(), // H1
            t.add_host(s[1], PortNo::new(5).unwrap()).unwrap(), // H2
            t.add_host(s[2], PortNo::new(5).unwrap()).unwrap(), // H3
            t.add_host(s[3], PortNo::new(5).unwrap()).unwrap(), // H4
            t.add_host(s[4], PortNo::new(5).unwrap()).unwrap(), // H5
        ];
        (t, s, hosts)
    }

    #[test]
    fn figure1_builds_and_validates() {
        let (t, s, h) = figure1();
        t.check_invariants().unwrap();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.host_count(), 6);
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.neighbors(s[2]).count(), 2);
        assert_eq!(t.hosts_on(s[2]).count(), 2);
        let c3 = t.host(h[0]).unwrap();
        assert_eq!(c3.attached.port.get(), 9);
    }

    #[test]
    fn double_wiring_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let c = t.add_switch(4);
        t.connect(a, 1, b, 1).unwrap();
        assert!(matches!(
            t.connect(a, 1, c, 1),
            Err(DumbNetError::PortInUse(_))
        ));
        // Failed connect must not leave half-wired state.
        t.check_invariants().unwrap();
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn host_on_wired_port_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        t.connect(a, 1, b, 1).unwrap();
        assert!(t.add_host(a, PortNo::new(1).unwrap()).is_err());
        assert_eq!(t.host_count(), 0);
    }

    #[test]
    fn link_state_hides_neighbors() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let l = t.connect(a, 1, b, 1).unwrap();
        assert_eq!(t.neighbors(a).count(), 1);
        assert!(t.set_link_state(l, false).unwrap());
        assert_eq!(t.neighbors(a).count(), 0);
        assert!(!t.set_link_state(l, true).unwrap());
        assert_eq!(t.neighbors(a).count(), 1);
    }

    #[test]
    fn mac_lookup_round_trips() {
        let (t, _, hosts) = figure1();
        for &h in &hosts {
            let info = t.host(h).unwrap();
            assert_eq!(t.host_by_mac(info.mac).unwrap().id, h);
        }
        assert!(t.host_by_mac(MacAddr::BROADCAST).is_none());
    }

    #[test]
    fn port_towards_respects_port_numbers() {
        let (t, s, _) = figure1();
        assert_eq!(t.port_towards(s[2], s[0]).unwrap().get(), 1);
        assert_eq!(t.port_towards(s[0], s[2]).unwrap().get(), 1);
        assert_eq!(t.port_towards(s[2], s[1]).unwrap().get(), 2);
        assert_eq!(t.port_towards(s[2], s[4]), None);
    }

    #[test]
    fn same_structure_detects_differences() {
        let (t1, _, _) = figure1();
        let (mut t2, _, _) = figure1();
        assert!(t1.same_structure(&t2));
        let l = t2.links().next().unwrap().id;
        t2.set_link_state(l, false).unwrap();
        assert!(!t1.same_structure(&t2));
    }

    #[test]
    fn auto_connect_uses_free_ports() {
        let mut t = Topology::new();
        let a = t.add_switch(2);
        let b = t.add_switch(2);
        t.connect_auto(a, b).unwrap();
        t.connect_auto(a, b).unwrap();
        assert!(t.connect_auto(a, b).is_err());
        assert_eq!(t.link_count(), 2);
        // Parallel links both visible.
        assert_eq!(t.neighbors(a).count(), 2);
    }

    #[test]
    fn oversized_switch_clamped() {
        let mut t = Topology::new();
        let s = t.add_switch(255);
        assert_eq!(t.switch(s).unwrap().ports, 254);
    }
}
