//! Switch-level routes and their conversion to port-tag paths.
//!
//! Routing algorithms work at switch granularity; the host agent then
//! converts a [`Route`] into the port-tag [`Path`] that actually goes into
//! the packet header. The conversion needs the topology, because only the
//! graph knows which output port faces which neighbor.

use serde::{Deserialize, Serialize};

use dumbnet_types::{DumbNetError, HostId, Path, Result, SwitchId};

use crate::graph::Topology;

/// A route as a sequence of switches from the source's leaf switch to the
/// destination's leaf switch (both inclusive).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    switches: Vec<SwitchId>,
}

impl Route {
    /// Creates a route from a switch sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::TopologyInvariant`] for an empty sequence
    /// or one with an immediate repeat (`…-S-S-…`).
    pub fn new(switches: Vec<SwitchId>) -> Result<Route> {
        if switches.is_empty() {
            return Err(DumbNetError::TopologyInvariant(
                "route must visit at least one switch".into(),
            ));
        }
        if switches.windows(2).any(|w| w[0] == w[1]) {
            return Err(DumbNetError::TopologyInvariant(
                "route repeats a switch consecutively".into(),
            ));
        }
        Ok(Route { switches })
    }

    /// The switches visited, in order.
    #[must_use]
    pub fn switches(&self) -> &[SwitchId] {
        &self.switches
    }

    /// First switch (the source host's leaf).
    #[must_use]
    pub fn first(&self) -> SwitchId {
        self.switches[0]
    }

    /// Last switch (the destination host's leaf).
    #[must_use]
    pub fn last(&self) -> SwitchId {
        *self.switches.last().expect("route non-empty")
    }

    /// Number of switch-to-switch hops.
    #[must_use]
    pub fn link_hops(&self) -> usize {
        self.switches.len() - 1
    }

    /// Returns `true` if no switch is visited twice (loop-free).
    #[must_use]
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.switches.len());
        self.switches.iter().all(|s| seen.insert(*s))
    }

    /// Returns `true` if every consecutive switch pair is joined by an up
    /// link in `topo`.
    #[must_use]
    pub fn is_valid_in(&self, topo: &Topology) -> bool {
        self.switches
            .windows(2)
            .all(|w| topo.port_towards(w[0], w[1]).is_some())
    }

    /// Converts the route into the port-tag path a packet from `src` to
    /// `dst` must carry.
    ///
    /// The path has one tag per switch the packet traverses: for each
    /// intermediate switch the output port toward the next switch, and for
    /// the final switch the port facing the destination host.
    ///
    /// # Errors
    ///
    /// Fails if the route's endpoints don't match the hosts' attachment
    /// switches, if any consecutive pair has no up link, or if the
    /// resulting path would be over-long.
    pub fn to_tag_path(&self, topo: &Topology, src: HostId, dst: HostId) -> Result<Path> {
        let src_info = topo.host(src)?;
        let dst_info = topo.host(dst)?;
        if src_info.attached.switch != self.first() {
            return Err(DumbNetError::PathRejected(format!(
                "route starts at {} but {} attaches to {}",
                self.first(),
                src,
                src_info.attached.switch
            )));
        }
        if dst_info.attached.switch != self.last() {
            return Err(DumbNetError::PathRejected(format!(
                "route ends at {} but {} attaches to {}",
                self.last(),
                dst,
                dst_info.attached.switch
            )));
        }
        let mut path = Path::empty();
        for w in self.switches.windows(2) {
            let port = topo.port_towards(w[0], w[1]).ok_or_else(|| {
                DumbNetError::PathRejected(format!("no up link {} → {}", w[0], w[1]))
            })?;
            path = path.push(port.into())?;
        }
        path = path.push(dst_info.attached.port.into())?;
        Ok(path)
    }

    /// Total weighted cost of this route under a per-link cost function.
    ///
    /// Missing links cost `u64::MAX` (the route is unusable).
    #[must_use]
    pub fn cost_with<F: Fn(SwitchId, SwitchId) -> Option<u64>>(&self, cost: F) -> u64 {
        let mut total: u64 = 0;
        for w in self.switches.windows(2) {
            match cost(w[0], w[1]) {
                Some(c) => total = total.saturating_add(c),
                None => return u64::MAX,
            }
        }
        total
    }
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for s in &self.switches {
            if !first {
                write!(f, "→")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_types::PortNo;

    fn line3() -> (Topology, Vec<SwitchId>, HostId, HostId) {
        // h0 - s0 - s1 - s2 - h1, with known port numbers.
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..3).map(|_| t.add_switch(8)).collect();
        t.connect(s[0], 2, s[1], 1).unwrap();
        t.connect(s[1], 2, s[2], 1).unwrap();
        let h0 = t.add_host(s[0], PortNo::new(5).unwrap()).unwrap();
        let h1 = t.add_host(s[2], PortNo::new(6).unwrap()).unwrap();
        (t, s, h0, h1)
    }

    #[test]
    fn tag_path_matches_ports() {
        let (t, s, h0, h1) = line3();
        let r = Route::new(vec![s[0], s[1], s[2]]).unwrap();
        let p = r.to_tag_path(&t, h0, h1).unwrap();
        assert_eq!(p.to_string(), "2-2-6-ø");
    }

    #[test]
    fn same_switch_route_is_single_tag() {
        let mut t = Topology::new();
        let s = t.add_switch(8);
        let a = t.add_host(s, PortNo::new(1).unwrap()).unwrap();
        let b = t.add_host(s, PortNo::new(2).unwrap()).unwrap();
        let r = Route::new(vec![s]).unwrap();
        assert_eq!(r.to_tag_path(&t, a, b).unwrap().to_string(), "2-ø");
        assert_eq!(r.to_tag_path(&t, b, a).unwrap().to_string(), "1-ø");
    }

    #[test]
    fn endpoint_mismatch_rejected() {
        let (t, s, h0, h1) = line3();
        let r = Route::new(vec![s[1], s[2]]).unwrap();
        assert!(matches!(
            r.to_tag_path(&t, h0, h1),
            Err(DumbNetError::PathRejected(_))
        ));
    }

    #[test]
    fn down_link_rejected() {
        let (mut t, s, h0, h1) = line3();
        let l = t.link_between(s[0], s[1]).unwrap().id;
        t.set_link_state(l, false).unwrap();
        let r = Route::new(vec![s[0], s[1], s[2]]).unwrap();
        assert!(r.to_tag_path(&t, h0, h1).is_err());
        assert!(!r.is_valid_in(&t));
    }

    #[test]
    fn constructor_rejects_degenerate() {
        assert!(Route::new(vec![]).is_err());
        assert!(Route::new(vec![SwitchId(1), SwitchId(1)]).is_err());
    }

    #[test]
    fn simplicity_check() {
        let r = Route::new(vec![SwitchId(0), SwitchId(1), SwitchId(0)]).unwrap();
        assert!(!r.is_simple());
        let r = Route::new(vec![SwitchId(0), SwitchId(1), SwitchId(2)]).unwrap();
        assert!(r.is_simple());
    }

    #[test]
    fn cost_with_missing_link_unusable() {
        let r = Route::new(vec![SwitchId(0), SwitchId(1)]).unwrap();
        assert_eq!(r.cost_with(|_, _| Some(3)), 3);
        assert_eq!(r.cost_with(|_, _| None), u64::MAX);
    }
}
