//! Shortest-path algorithms with randomized equal-cost tie-breaking.
//!
//! §4.3 of the paper: *"We compute the primary path with a common shortest
//! path algorithm. It also randomizes the choice for equal cost links, so
//! it generates different shortest paths, useful for load balancing."*
//!
//! The functions here operate at switch granularity on a [`Topology`] (or
//! any link-cost closure), returning [`Route`]s.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;

use dumbnet_types::SwitchId;

use crate::graph::Topology;
use crate::route::Route;

/// Per-source shortest-path distances to every switch, from a single
/// Dijkstra/BFS run.
#[derive(Debug, Clone)]
pub struct DistanceMap {
    source: SwitchId,
    dist: Vec<u64>,
}

impl DistanceMap {
    /// The source switch of this map.
    #[must_use]
    pub fn source(&self) -> SwitchId {
        self.source
    }

    /// Distance to `sw`, or `None` if unreachable.
    #[must_use]
    pub fn dist(&self, sw: SwitchId) -> Option<u64> {
        match self.dist.get(sw.get() as usize) {
            Some(&u64::MAX) | None => None,
            Some(&d) => Some(d),
        }
    }

    /// Iterates over `(switch, distance)` for all reachable switches.
    pub fn reachable(&self) -> impl Iterator<Item = (SwitchId, u64)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u64::MAX)
            .map(|(ix, &d)| (SwitchId::new(ix as u64), d))
    }
}

/// Computes hop distances from `source` to every switch over up links.
#[must_use]
pub fn distances(topo: &Topology, source: SwitchId) -> DistanceMap {
    distances_weighted(topo, source, |_| 1)
}

/// Computes weighted distances from `source` with a per-link cost
/// function (`cost(link_id_index)` not exposed; cost takes endpoint pair).
///
/// Costs are per *edge traversal*; the function receives the edge's
/// `(from, to)` switch pair so asymmetric costs are possible.
#[must_use]
pub fn distances_weighted<F>(topo: &Topology, source: SwitchId, cost: F) -> DistanceMap
where
    F: Fn((SwitchId, SwitchId)) -> u64,
{
    let n = topo.switch_count();
    let mut dist = vec![u64::MAX; n];
    if (source.get() as usize) < n {
        dist[source.get() as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.get() as usize] {
                continue;
            }
            for (_, v, _) in topo.neighbors(u) {
                let nd = d.saturating_add(cost((u, v)));
                if nd < dist[v.get() as usize] {
                    dist[v.get() as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    DistanceMap { source, dist }
}

/// Computes one shortest route from `src` to `dst` over up links, with
/// uniform-random choice among equal-cost predecessors.
///
/// Returns `None` if `dst` is unreachable. Repeated calls with a seeded
/// RNG spread traffic over the ECMP fan (the paper's load-balancing
/// primitive).
#[must_use]
pub fn shortest_route<R: Rng>(
    topo: &Topology,
    src: SwitchId,
    dst: SwitchId,
    rng: &mut R,
) -> Option<Route> {
    shortest_route_weighted(topo, src, dst, |_| 1, rng)
}

/// Weighted variant of [`shortest_route`].
///
/// The cost function receives the `(from, to)` switch pair of each edge;
/// the path-graph backup computation uses this to inflate primary-path
/// links (§4.3).
#[must_use]
pub fn shortest_route_weighted<F, R>(
    topo: &Topology,
    src: SwitchId,
    dst: SwitchId,
    cost: F,
    rng: &mut R,
) -> Option<Route>
where
    F: Fn((SwitchId, SwitchId)) -> u64,
    R: Rng,
{
    let n = topo.switch_count();
    if src.get() as usize >= n || dst.get() as usize >= n {
        return None;
    }
    if src == dst {
        return Route::new(vec![src]).ok();
    }
    // Run Dijkstra from dst so dist[] measures distance *to* dst; then
    // walk forward from src choosing random minimizing next hops. This
    // randomizes uniformly over next-hop choices at every node.
    let dist = distances_weighted(topo, dst, |(a, b)| cost((b, a)));
    dist.dist(src)?;
    let mut route = vec![src];
    let mut cur = src;
    // Walk at most n hops — a correct descent terminates well before.
    for _ in 0..n {
        if cur == dst {
            return Route::new(route).ok();
        }
        let d_cur = dist.dist(cur)?;
        let mut best: Vec<SwitchId> = Vec::new();
        let mut best_cost = u64::MAX;
        for (_, v, _) in topo.neighbors(cur) {
            if let Some(dv) = dist.dist(v) {
                let through = cost((cur, v)).saturating_add(dv);
                if through < best_cost {
                    best_cost = through;
                    best.clear();
                    best.push(v);
                } else if through == best_cost {
                    best.push(v);
                }
            }
        }
        if best.is_empty() || best_cost > d_cur {
            return None;
        }
        // Deduplicate parallel-link neighbors so the random choice is
        // uniform over next switches, then pick one.
        best.sort();
        best.dedup();
        let next = best[rng.gen_range(0..best.len())];
        route.push(next);
        cur = next;
    }
    (cur == dst).then(|| Route::new(route).ok()).flatten()
}

/// Hop distance between two switches, if connected.
#[must_use]
pub fn hop_distance(topo: &Topology, a: SwitchId, b: SwitchId) -> Option<u64> {
    distances(topo, a).dist(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_on_line() {
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..4).map(|_| t.add_switch(4)).collect();
        for w in s.windows(2) {
            t.connect_auto(w[0], w[1]).unwrap();
        }
        let d = distances(&t, s[0]);
        assert_eq!(d.dist(s[0]), Some(0));
        assert_eq!(d.dist(s[3]), Some(3));
        assert_eq!(d.reachable().count(), 4);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        assert_eq!(hop_distance(&t, a, b), None);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(shortest_route(&t, a, b, &mut rng).is_none());
    }

    #[test]
    fn shortest_route_is_shortest() {
        let t = generators::leaf_spine(2, 5, 0, 16).topology;
        let mut rng = StdRng::seed_from_u64(7);
        // Any leaf to any other leaf is 2 hops (via a spine).
        let leaves: Vec<SwitchId> = t.switches().skip(2).map(|s| s.id).collect();
        for &a in &leaves {
            for &b in &leaves {
                if a == b {
                    continue;
                }
                let r = shortest_route(&t, a, b, &mut rng).unwrap();
                assert_eq!(r.link_hops(), 2, "{a}→{b} got {r}");
                assert!(r.is_simple());
                assert!(r.is_valid_in(&t));
            }
        }
    }

    #[test]
    fn tie_breaking_spreads_over_spines() {
        let t = generators::leaf_spine(2, 2, 0, 16).topology;
        let leaves: Vec<SwitchId> = t.switches().skip(2).map(|s| s.id).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let r = shortest_route(&t, leaves[0], leaves[1], &mut rng).unwrap();
            seen.insert(r.switches()[1]);
        }
        assert_eq!(seen.len(), 2, "both spines should be used");
    }

    #[test]
    fn weighted_route_avoids_expensive_link() {
        // Triangle a-b, b-c, a-c. Direct a-c link priced high.
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let c = t.add_switch(4);
        t.connect_auto(a, b).unwrap();
        t.connect_auto(b, c).unwrap();
        t.connect_auto(a, c).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cost = |(x, y): (SwitchId, SwitchId)| {
            if (x == a && y == c) || (x == c && y == a) {
                10
            } else {
                1
            }
        };
        let r = shortest_route_weighted(&t, a, c, cost, &mut rng).unwrap();
        assert_eq!(r.switches(), &[a, b, c]);
    }

    #[test]
    fn same_switch_route() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let mut rng = StdRng::seed_from_u64(1);
        let r = shortest_route(&t, a, a, &mut rng).unwrap();
        assert_eq!(r.switches(), &[a]);
        assert_eq!(r.link_hops(), 0);
    }

    #[test]
    fn down_links_excluded() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let l = t.connect_auto(a, b).unwrap();
        t.set_link_state(l, false).unwrap();
        assert_eq!(hop_distance(&t, a, b), None);
    }
}
