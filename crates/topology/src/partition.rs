//! Cell assignment: partitioning a [`Topology`] for sharded simulation.
//!
//! The sharded event engine (`dumbnet-sim`'s `ShardedWorld`) executes
//! one *cell* of nodes per shard and synchronizes shards in conservative
//! time windows bounded by the minimum inter-cell link latency. A good
//! partition therefore (a) balances node counts across cells so no shard
//! straggles, and (b) keeps tightly-coupled switches together so most
//! traffic stays shard-local.
//!
//! [`assign_cells`] implements two strategies:
//!
//! * **Pod-aware** — when the generator published `"podN"` groups (the
//!   fat-tree generator does), each pod lands in cell `N % cells` and
//!   core switches round-robin across cells. Fat-tree pods are the
//!   natural unit: all edge↔agg traffic is pod-internal, and only
//!   agg↔core links cross cells.
//! * **Balanced BFS fallback** — for arbitrary graphs, grow cells by
//!   breadth-first search from the lowest-numbered unassigned switch
//!   until the cell reaches `⌈switches / cells⌉` members, then start the
//!   next cell. Deterministic for a given topology.
//!
//! Hosts always inherit the cell of the switch they hang off, so access
//! links never cross a shard boundary.

use std::collections::{BTreeMap, VecDeque};

use dumbnet_types::{HostId, SwitchId};

use crate::graph::Topology;

/// A mapping from every switch and host in a topology to its cell.
///
/// Produced by [`assign_cells`]; consumed by fabric builders that place
/// simulation nodes with `add_node_in_cell`.
#[derive(Debug, Clone)]
pub struct CellAssignment {
    switch_cells: BTreeMap<SwitchId, u32>,
    host_cells: BTreeMap<HostId, u32>,
    cells: u32,
}

impl CellAssignment {
    /// Number of cells this assignment targets.
    #[must_use]
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// The cell a switch was assigned to (cell 0 for unknown switches).
    #[must_use]
    pub fn switch_cell(&self, sw: SwitchId) -> u32 {
        self.switch_cells.get(&sw).copied().unwrap_or(0)
    }

    /// The cell a host was assigned to (cell 0 for unknown hosts).
    #[must_use]
    pub fn host_cell(&self, host: HostId) -> u32 {
        self.host_cells.get(&host).copied().unwrap_or(0)
    }

    /// Switch + host population of each cell, indexed by cell number.
    #[must_use]
    pub fn cell_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cells as usize];
        for &c in self.switch_cells.values().chain(self.host_cells.values()) {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Number of switch-to-switch links whose endpoints sit in different
    /// cells — the links that bound the sharded engine's lookahead.
    #[must_use]
    pub fn cross_cell_links(&self, topo: &Topology) -> usize {
        topo.links()
            .filter(|l| self.switch_cell(l.a.switch) != self.switch_cell(l.b.switch))
            .count()
    }
}

/// Partitions `topo` into `cells` cells.
///
/// `groups` is the generator's named-group map; when it contains
/// `"pod0"`, `"pod1"`, … entries they drive the partition (see module
/// docs), otherwise a balanced BFS fallback is used. Pass an empty map
/// for hand-built topologies.
///
/// # Panics
///
/// Panics if `cells` is zero.
#[must_use]
pub fn assign_cells(
    topo: &Topology,
    groups: &BTreeMap<String, Vec<SwitchId>>,
    cells: u32,
) -> CellAssignment {
    assert!(cells > 0, "cell count must be positive");
    let mut switch_cells: BTreeMap<SwitchId, u32> = BTreeMap::new();

    let pods: Vec<&Vec<SwitchId>> = (0..)
        .map(|i| groups.get(&format!("pod{i}")))
        .take_while(Option::is_some)
        .flatten()
        .collect();
    if pods.is_empty() {
        assign_bfs(topo, cells, &mut switch_cells);
    } else {
        for (pod, members) in pods.iter().enumerate() {
            let cell = u32::try_from(pod).expect("pod count fits in u32") % cells;
            for &sw in *members {
                switch_cells.insert(sw, cell);
            }
        }
        // Core switches (and anything else outside a pod) round-robin
        // across cells for balance; they talk to every pod anyway.
        let mut next = 0u32;
        for sw in topo.switches() {
            if let std::collections::btree_map::Entry::Vacant(e) = switch_cells.entry(sw.id) {
                e.insert(next % cells);
                next += 1;
            }
        }
    }

    let host_cells = topo
        .hosts()
        .map(|h| {
            let cell = switch_cells.get(&h.attached.switch).copied().unwrap_or(0);
            (h.id, cell)
        })
        .collect();
    CellAssignment {
        switch_cells,
        host_cells,
        cells,
    }
}

/// Balanced BFS partition: grow each cell to `⌈n / cells⌉` switches by
/// BFS from the lowest-numbered unassigned switch, then move on.
fn assign_bfs(topo: &Topology, cells: u32, out: &mut BTreeMap<SwitchId, u32>) {
    let total = topo.switch_count();
    if total == 0 {
        return;
    }
    let target = total.div_ceil(cells as usize);
    let all: Vec<SwitchId> = topo.switches().map(|s| s.id).collect();
    let mut cell = 0u32;
    let mut filled = 0usize;
    for &seed in &all {
        if out.contains_key(&seed) {
            continue;
        }
        let mut queue = VecDeque::from([seed]);
        while let Some(sw) = queue.pop_front() {
            if out.contains_key(&sw) {
                continue;
            }
            out.insert(sw, cell);
            filled += 1;
            if filled >= target && (cell + 1) < cells {
                cell += 1;
                filled = 0;
                queue.clear();
                break;
            }
            let mut next: Vec<SwitchId> = topo
                .neighbors(sw)
                .filter(|(_, n, _)| !out.contains_key(n))
                .map(|(_, n, _)| n)
                .collect();
            next.sort_unstable();
            queue.extend(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fat_tree_pods_drive_the_partition() {
        let g = generators::fat_tree(4, 2, None);
        let asn = assign_cells(&g.topology, &g.groups, 4);
        // Every pod member shares its pod's cell.
        for pod in 0..4u32 {
            let members = g.groups.get(&format!("pod{pod}")).unwrap();
            for &sw in members {
                assert_eq!(asn.switch_cell(sw), pod, "pod {pod} split across cells");
            }
        }
        // Hosts follow their edge switch.
        for h in g.topology.hosts() {
            assert_eq!(asn.host_cell(h.id), asn.switch_cell(h.attached.switch));
        }
        // Cores spread out: with 4 cores and 4 cells, one each.
        let sizes = asn.cell_sizes();
        assert_eq!(sizes.len(), 4);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert_eq!(min, max, "pod partition should be perfectly balanced");
        // Only agg↔core links cross cells; edge↔agg and access stay home.
        assert!(asn.cross_cell_links(&g.topology) > 0);
    }

    #[test]
    fn pods_fold_when_fewer_cells_than_pods() {
        let g = generators::fat_tree(8, 1, None);
        let asn = assign_cells(&g.topology, &g.groups, 2);
        for pod in 0..8u32 {
            for &sw in g.groups.get(&format!("pod{pod}")).unwrap() {
                assert_eq!(asn.switch_cell(sw), pod % 2);
            }
        }
        let sizes = asn.cell_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), {
            g.topology.switch_count() + g.topology.host_count()
        });
    }

    #[test]
    fn bfs_fallback_balances_arbitrary_graphs() {
        let g = generators::cube(&[4, 4], 1, 8);
        assert!(!g.groups.contains_key("pod0"));
        let asn = assign_cells(&g.topology, &g.groups, 4);
        let sizes = asn.cell_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(
            sizes.iter().sum::<usize>(),
            g.topology.switch_count() + g.topology.host_count()
        );
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(
            max - min <= sizes.iter().sum::<usize>() / 4,
            "BFS partition badly skewed: {sizes:?}"
        );
        // Deterministic.
        let again = assign_cells(&g.topology, &g.groups, 4);
        for sw in g.topology.switches() {
            assert_eq!(asn.switch_cell(sw.id), again.switch_cell(sw.id));
        }
    }

    #[test]
    fn single_cell_assignment_is_all_zero() {
        let g = generators::testbed();
        let asn = assign_cells(&g.topology, &g.groups, 1);
        for sw in g.topology.switches() {
            assert_eq!(asn.switch_cell(sw.id), 0);
        }
        for h in g.topology.hosts() {
            assert_eq!(asn.host_cell(h.id), 0);
        }
        assert_eq!(asn.cross_cell_links(&g.topology), 0);
    }
}
