//! Path graphs — the paper's Algorithm 1 (§4.3).
//!
//! A path graph is the unit of caching between controller and host: a
//! subgraph of the topology containing (i) a primary shortest path,
//! (ii) *s-step, ε-good* local detours around every window of the primary
//! path, and (iii) a backup path sharing as few links with the primary as
//! possible. Hosts route within their cached path graphs and only go back
//! to the controller when the subgraph no longer connects the endpoints.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashSet};

use rand::Rng;
use serde::{Deserialize, Serialize};

use dumbnet_types::{DumbNetError, HostId, MacAddr, Path, PortId, PortNo, Result, SwitchId};

use crate::graph::Topology;
use crate::route::Route;
use crate::spath;

/// Tunables for path-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathGraphParams {
    /// How many alternative paths the host's PathTable extracts and
    /// caches from the subgraph.
    pub k: usize,
    /// Detour window length in hops (`s` in Algorithm 1). The paper's
    /// evaluation fixes `s = 2`.
    pub s: usize,
    /// Detour slack in hops (`ε` in Algorithm 1): a detour for a window
    /// of length `s` may be up to `s + ε` hops long.
    pub epsilon: u64,
}

impl Default for PathGraphParams {
    fn default() -> PathGraphParams {
        PathGraphParams {
            k: 4,
            s: 2,
            epsilon: 2,
        }
    }
}

/// A host endpoint of a path graph: identity plus attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endpoint {
    /// Host identity.
    pub host: HostId,
    /// Host MAC address.
    pub mac: MacAddr,
    /// Switch port the host hangs off.
    pub attach: PortId,
}

/// One switch-to-switch edge of the cached subgraph, with port detail so
/// hosts can emit tag paths without consulting the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubEdge {
    /// One endpoint.
    pub a: PortId,
    /// The other endpoint.
    pub b: PortId,
}

impl SubEdge {
    /// Normalized switch pair (lower ID first) for set keys.
    #[must_use]
    pub fn key(&self) -> (SwitchId, SwitchId) {
        let (x, y) = (self.a.switch, self.b.switch);
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }
}

/// The cached subgraph for one (src, dst) host pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathGraph {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// The primary (shortest) route, switch-level.
    pub primary: Route,
    /// The backup route (may be `None` in graphs with no redundancy).
    pub backup: Option<Route>,
    /// All switches in the subgraph.
    pub switches: BTreeSet<SwitchId>,
    /// All edges among subgraph switches (with port numbers).
    pub edges: Vec<SubEdge>,
}

/// Builds the path graph for `src → dst` per Algorithm 1.
///
/// # Errors
///
/// Returns [`DumbNetError::NoRoute`] when the hosts are disconnected and
/// propagates host lookup failures.
pub fn build<R: Rng>(
    topo: &Topology,
    src: HostId,
    dst: HostId,
    params: &PathGraphParams,
    rng: &mut R,
) -> Result<PathGraph> {
    let src_info = *topo.host(src)?;
    let dst_info = *topo.host(dst)?;
    let s_src = src_info.attached.switch;
    let s_dst = dst_info.attached.switch;

    // (1) Primary path: randomized shortest path.
    let primary = spath::shortest_route(topo, s_src, s_dst, rng).ok_or(DumbNetError::NoRoute {
        src: src.get(),
        dst: dst.get(),
    })?;

    // (2) Backup path: re-run with primary links inflated so they are
    // reused only when unavoidable.
    let primary_links: HashSet<(SwitchId, SwitchId)> = primary
        .switches()
        .windows(2)
        .flat_map(|w| [(w[0], w[1]), (w[1], w[0])])
        .collect();
    let penalty = topo.switch_count() as u64 + 2;
    let backup = spath::shortest_route_weighted(
        topo,
        s_src,
        s_dst,
        |e| {
            if primary_links.contains(&e) {
                penalty
            } else {
                1
            }
        },
        rng,
    )
    // A backup identical to the primary adds nothing; drop it.
    .filter(|b| b.switches() != primary.switches());

    // (3) Local detours, Algorithm 1. For each window (a, b) of up to s
    // consecutive hops along the primary, admit every switch x with
    // dist(a, x) + dist(x, b) ≤ s + ε.
    let p = primary.switches();
    let l = p.len() - 1; // Number of hops.
    let s_win = params.s.max(1);
    let mut detour: BTreeSet<SwitchId> = p.iter().copied().collect();
    let step = (s_win / 2).max(1);
    let mut i = 0usize;
    while i < l {
        let a = p[i];
        let b = p[(i + s_win).min(l)];
        let window_len = (i + s_win).min(l) - i;
        let da = spath::distances(topo, a);
        let db = spath::distances(topo, b);
        let budget = window_len as u64 + params.epsilon;
        for (x, dax) in da.reachable() {
            if let Some(dxb) = db.dist(x) {
                if dax + dxb <= budget {
                    detour.insert(x);
                }
            }
        }
        i += step;
    }
    if let Some(b) = &backup {
        detour.extend(b.switches().iter().copied());
    }

    // (4) Materialize the induced subgraph with port detail.
    let mut edges = Vec::new();
    let mut seen: BTreeSet<(PortId, PortId)> = BTreeSet::new();
    for &sw in &detour {
        for (port, nb, lid) in topo.neighbors(sw) {
            if !detour.contains(&nb) {
                continue;
            }
            let link = topo.link(lid)?;
            let (a, b) = if link.a <= link.b {
                (link.a, link.b)
            } else {
                (link.b, link.a)
            };
            if seen.insert((a, b)) {
                edges.push(SubEdge { a, b });
            }
            let _ = port;
        }
    }

    Ok(PathGraph {
        src: Endpoint {
            host: src,
            mac: src_info.mac,
            attach: src_info.attached,
        },
        dst: Endpoint {
            host: dst,
            mac: dst_info.mac,
            attach: dst_info.attached,
        },
        primary,
        backup,
        switches: detour,
        edges,
    })
}

impl PathGraph {
    /// Number of switches cached (the Figure 12 metric).
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of subgraph edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adjacency restricted to the subgraph, excluding `down` edges
    /// (normalized switch pairs).
    #[must_use]
    pub fn adjacency(
        &self,
        down: &HashSet<(SwitchId, SwitchId)>,
    ) -> BTreeMap<SwitchId, Vec<(PortNo, SwitchId)>> {
        let mut adj: BTreeMap<SwitchId, Vec<(PortNo, SwitchId)>> = BTreeMap::new();
        for e in &self.edges {
            if down.contains(&e.key()) {
                continue;
            }
            adj.entry(e.a.switch)
                .or_default()
                .push((e.a.port, e.b.switch));
            adj.entry(e.b.switch)
                .or_default()
                .push((e.b.port, e.a.switch));
        }
        adj
    }

    /// Shortest route from the source's switch to the destination's
    /// switch *within the subgraph*, avoiding `down` edges.
    ///
    /// This is what lets a host fail over locally, without contacting the
    /// controller, when a primary link dies.
    #[must_use]
    pub fn shortest_within(&self, down: &HashSet<(SwitchId, SwitchId)>) -> Option<Route> {
        let adj = self.adjacency(down);
        let src = self.src.attach.switch;
        let dst = self.dst.attach.switch;
        if src == dst {
            return Route::new(vec![src]).ok();
        }
        let mut dist: BTreeMap<SwitchId, u64> = BTreeMap::new();
        let mut prev: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > *dist.get(&u).unwrap_or(&u64::MAX) {
                continue;
            }
            if u == dst {
                break;
            }
            if let Some(nexts) = adj.get(&u) {
                for &(_, v) in nexts {
                    let nd = d + 1;
                    if nd < *dist.get(&v).unwrap_or(&u64::MAX) {
                        dist.insert(v, nd);
                        prev.insert(v, u);
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
        }
        dist.get(&dst)?;
        let mut route = vec![dst];
        let mut cur = dst;
        while let Some(&p) = prev.get(&cur) {
            route.push(p);
            cur = p;
        }
        route.reverse();
        Route::new(route).ok()
    }

    /// Up to `k` shortest loopless routes within the subgraph, avoiding
    /// `down` edges (small-scale Yen over the cached adjacency).
    #[must_use]
    pub fn k_shortest_within(&self, k: usize, down: &HashSet<(SwitchId, SwitchId)>) -> Vec<Route> {
        if k == 0 {
            return Vec::new();
        }
        let mut results: Vec<Route> = Vec::new();
        let Some(first) = self.shortest_within(down) else {
            return results;
        };
        results.push(first);
        let mut candidates: BinaryHeap<Reverse<(usize, Vec<SwitchId>)>> = BinaryHeap::new();
        let mut seen: HashSet<Vec<SwitchId>> =
            results.iter().map(|r| r.switches().to_vec()).collect();
        while results.len() < k {
            let last = results.last().expect("non-empty").switches().to_vec();
            for spur_ix in 0..last.len().saturating_sub(1) {
                let root = &last[..=spur_ix];
                // Ban edges used by already-found routes sharing this root,
                // and nodes of the root prefix, then reroute.
                let mut banned: HashSet<(SwitchId, SwitchId)> = down.clone();
                for r in results
                    .iter()
                    .map(Route::switches)
                    .chain(candidates.iter().map(|c| c.0 .1.as_slice()))
                {
                    if r.len() > spur_ix && r[..=spur_ix] == *root {
                        let (a, b) = (r[spur_ix], r[spur_ix + 1]);
                        let key = if a <= b { (a, b) } else { (b, a) };
                        banned.insert(key);
                    }
                }
                let root_nodes: HashSet<SwitchId> = root[..spur_ix].iter().copied().collect();
                let sub = PathGraph {
                    src: Endpoint {
                        attach: PortId::new(root[spur_ix], self.src.attach.port),
                        ..self.src
                    },
                    ..self.clone()
                };
                // Reuse shortest_within from the spur node by shadowing the
                // source attach switch; filter root nodes via `banned` edges
                // touching them.
                let mut banned2 = banned;
                for e in &self.edges {
                    let (x, y) = e.key();
                    if root_nodes.contains(&x) || root_nodes.contains(&y) {
                        banned2.insert((x, y));
                    }
                }
                if let Some(spur) = sub.shortest_within(&banned2) {
                    let mut total = root[..spur_ix].to_vec();
                    total.extend(spur.switches());
                    if total.windows(2).all(|w| w[0] != w[1]) && seen.insert(total.clone()) {
                        candidates.push(Reverse((total.len(), total)));
                    }
                }
            }
            match candidates.pop() {
                Some(Reverse((_, next))) => {
                    if let Ok(r) = Route::new(next) {
                        if r.is_simple() {
                            results.push(r);
                        }
                    }
                }
                None => break,
            }
        }
        results
    }

    /// Converts a switch-level route from this graph into the tag path a
    /// packet must carry, using the subgraph's own port map.
    ///
    /// # Errors
    ///
    /// Fails if the route endpoints don't match the cached endpoints or
    /// the route uses an edge absent from the subgraph.
    pub fn tag_path(&self, route: &Route) -> Result<Path> {
        if route.first() != self.src.attach.switch {
            return Err(DumbNetError::PathRejected(format!(
                "route starts at {}, source attaches to {}",
                route.first(),
                self.src.attach.switch
            )));
        }
        if route.last() != self.dst.attach.switch {
            return Err(DumbNetError::PathRejected(format!(
                "route ends at {}, destination attaches to {}",
                route.last(),
                self.dst.attach.switch
            )));
        }
        let mut path = Path::empty();
        for w in route.switches().windows(2) {
            let port = self
                .edges
                .iter()
                .find_map(|e| {
                    if e.a.switch == w[0] && e.b.switch == w[1] {
                        Some(e.a.port)
                    } else if e.b.switch == w[0] && e.a.switch == w[1] {
                        Some(e.b.port)
                    } else {
                        None
                    }
                })
                .ok_or_else(|| {
                    DumbNetError::PathRejected(format!("edge {} → {} not cached", w[0], w[1]))
                })?;
            path = path.push(port.into())?;
        }
        path.push(self.dst.attach.port.into())
    }

    /// Returns `true` if the subgraph contains an (up) edge between the
    /// two switches.
    #[must_use]
    pub fn contains_edge(&self, a: SwitchId, b: SwitchId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edges.iter().any(|e| e.key() == key)
    }

    /// Removes an edge (both directions) from the cache — the host-side
    /// reaction to a link-failure notification. Returns `true` if the
    /// edge was present.
    pub fn remove_edge(&mut self, a: SwitchId, b: SwitchId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        let before = self.edges.len();
        self.edges.retain(|e| e.key() != key);
        self.edges.len() != before
    }

    /// Materializes a reusable router over this subgraph — the form the
    /// host agent keeps hot, with dense indices and preallocated scratch
    /// space so repeated find-path calls avoid rebuilding adjacency
    /// (Table 2's "Find Path" operation).
    #[must_use]
    pub fn router(&self) -> PathGraphRouter {
        let mut nodes: Vec<SwitchId> = self.switches.iter().copied().collect();
        nodes.sort();
        let index = |s: SwitchId| nodes.binary_search(&s).ok();
        let mut adj: Vec<Vec<(PortNo, u32)>> = vec![Vec::new(); nodes.len()];
        for e in &self.edges {
            if let (Some(a), Some(b)) = (index(e.a.switch), index(e.b.switch)) {
                adj[a].push((e.a.port, b as u32));
                adj[b].push((e.b.port, a as u32));
            }
        }
        let n = nodes.len();
        PathGraphRouter {
            nodes,
            adj,
            src: self.src.attach.switch,
            dst: self.dst.attach.switch,
            dist: vec![u32::MAX; n],
            prev: vec![u32::MAX; n],
            queue: std::collections::VecDeque::with_capacity(n),
        }
    }
}

/// A reusable, allocation-free find-path engine over one cached path
/// graph (see [`PathGraph::router`]).
#[derive(Debug, Clone)]
pub struct PathGraphRouter {
    nodes: Vec<SwitchId>,
    adj: Vec<Vec<(PortNo, u32)>>,
    src: SwitchId,
    dst: SwitchId,
    dist: Vec<u32>,
    prev: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
}

impl PathGraphRouter {
    /// Finds the shortest route from the cached source switch to the
    /// cached destination switch, avoiding `down` edges. Hop costs are
    /// uniform, so a BFS over the dense adjacency suffices.
    #[must_use]
    pub fn shortest(&mut self, down: &HashSet<(SwitchId, SwitchId)>) -> Option<Route> {
        let src = self.nodes.binary_search(&self.src).ok()? as u32;
        let dst = self.nodes.binary_search(&self.dst).ok()? as u32;
        if src == dst {
            return Route::new(vec![self.src]).ok();
        }
        self.dist.fill(u32::MAX);
        self.queue.clear();
        self.dist[src as usize] = 0;
        self.queue.push_back(src);
        while let Some(u) = self.queue.pop_front() {
            if u == dst {
                break;
            }
            let du = self.dist[u as usize];
            for k in 0..self.adj[u as usize].len() {
                let (_, v) = self.adj[u as usize][k];
                if self.dist[v as usize] != u32::MAX {
                    continue;
                }
                if !down.is_empty() {
                    let (a, b) = (self.nodes[u as usize], self.nodes[v as usize]);
                    let key = if a <= b { (a, b) } else { (b, a) };
                    if down.contains(&key) {
                        continue;
                    }
                }
                self.dist[v as usize] = du + 1;
                self.prev[v as usize] = u;
                self.queue.push_back(v);
            }
        }
        if self.dist[dst as usize] == u32::MAX {
            return None;
        }
        let mut route = vec![self.nodes[dst as usize]];
        let mut cur = dst;
        while cur != src {
            cur = self.prev[cur as usize];
            route.push(self.nodes[cur as usize]);
        }
        route.reverse();
        Route::new(route).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(s: usize, epsilon: u64) -> PathGraphParams {
        PathGraphParams { k: 4, s, epsilon }
    }

    #[test]
    fn testbed_pathgraph_has_detours_and_backup() {
        let g = generators::testbed();
        let t = &g.topology;
        let mut rng = StdRng::seed_from_u64(11);
        // Hosts 0 and 26 are on different leaves.
        let pg = build(t, HostId(0), HostId(26), &params(2, 2), &mut rng).unwrap();
        assert_eq!(pg.primary.link_hops(), 2);
        let backup = pg.backup.as_ref().expect("testbed has redundancy");
        // Backup must not share the middle (spine) switch with primary.
        assert_ne!(backup.switches()[1], pg.primary.switches()[1]);
        // With ε=2 both spines and several leaves are cached.
        assert!(pg.switch_count() >= 4, "only {} cached", pg.switch_count());
    }

    #[test]
    fn primary_always_in_subgraph() {
        let g = generators::fat_tree(4, 2, None);
        let mut rng = StdRng::seed_from_u64(5);
        let pg = build(&g.topology, HostId(0), HostId(15), &params(2, 1), &mut rng).unwrap();
        for s in pg.primary.switches() {
            assert!(pg.switches.contains(s));
        }
        for w in pg.primary.switches().windows(2) {
            assert!(pg.contains_edge(w[0], w[1]));
        }
    }

    #[test]
    fn subgraph_grows_with_epsilon() {
        let g = generators::cube(&[5, 5, 5], 1, 16);
        let mut last = 0;
        for eps in [0u64, 1, 2, 3] {
            // Fresh identically-seeded RNG per build so the primary path
            // is the same and only ε varies.
            let mut rng = StdRng::seed_from_u64(9);
            let pg = build(
                &g.topology,
                HostId(0),
                HostId(124),
                &params(2, eps),
                &mut rng,
            )
            .unwrap();
            assert!(
                pg.switch_count() >= last,
                "ε={eps}: {} < {last}",
                pg.switch_count()
            );
            last = pg.switch_count();
        }
    }

    #[test]
    fn failover_within_subgraph() {
        let g = generators::testbed();
        let mut rng = StdRng::seed_from_u64(3);
        let pg = build(&g.topology, HostId(0), HostId(26), &params(2, 2), &mut rng).unwrap();
        // Kill the primary's first link; a route must still exist inside
        // the cached subgraph.
        let p = pg.primary.switches();
        let mut down = HashSet::new();
        let key = if p[0] <= p[1] {
            (p[0], p[1])
        } else {
            (p[1], p[0])
        };
        down.insert(key);
        let alt = pg.shortest_within(&down).expect("detour exists");
        assert!(alt
            .switches()
            .windows(2)
            .all(|w| (w[0], w[1]) != (p[0], p[1]) && (w[1], w[0]) != (p[0], p[1])));
    }

    #[test]
    fn tag_path_round_trips_through_real_topology() {
        let g = generators::testbed();
        let t = &g.topology;
        let mut rng = StdRng::seed_from_u64(17);
        let pg = build(t, HostId(2), HostId(20), &params(2, 2), &mut rng).unwrap();
        let tags = pg.tag_path(&pg.primary).unwrap();
        // Independently derive via the full topology; they must agree.
        let expect = pg.primary.to_tag_path(t, HostId(2), HostId(20)).unwrap();
        assert_eq!(tags, expect);
    }

    #[test]
    fn k_shortest_within_uses_detours() {
        let g = generators::testbed();
        let mut rng = StdRng::seed_from_u64(23);
        let pg = build(&g.topology, HostId(0), HostId(26), &params(2, 2), &mut rng).unwrap();
        let routes = pg.k_shortest_within(4, &HashSet::new());
        assert!(routes.len() >= 2, "got {}", routes.len());
        assert_eq!(routes[0].link_hops(), 2);
        assert_eq!(routes[1].link_hops(), 2);
        let set: HashSet<_> = routes.iter().map(|r| r.switches().to_vec()).collect();
        assert_eq!(set.len(), routes.len());
    }

    #[test]
    fn same_leaf_pair_single_switch_graph() {
        let g = generators::testbed();
        let mut rng = StdRng::seed_from_u64(29);
        // Hosts 0 and 1 share leaf 0.
        let pg = build(&g.topology, HostId(0), HostId(1), &params(2, 2), &mut rng).unwrap();
        assert_eq!(pg.primary.link_hops(), 0);
        let tags = pg.tag_path(&pg.primary).unwrap();
        assert_eq!(tags.len(), 1);
    }

    #[test]
    fn no_route_between_disconnected_hosts() {
        let mut t = Topology::new();
        let a = t.add_switch(4);
        let b = t.add_switch(4);
        let ha = t.add_host_auto(a).unwrap();
        let hb = t.add_host_auto(b).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            build(&t, ha, hb, &PathGraphParams::default(), &mut rng),
            Err(DumbNetError::NoRoute { .. })
        ));
    }

    #[test]
    fn router_agrees_with_shortest_within() {
        let g = generators::testbed();
        let mut rng = StdRng::seed_from_u64(31);
        let pg = build(&g.topology, HostId(0), HostId(26), &params(2, 2), &mut rng).unwrap();
        let mut router = pg.router();
        let none = HashSet::new();
        let a = pg.shortest_within(&none).unwrap();
        let b = router.shortest(&none).unwrap();
        assert_eq!(a.link_hops(), b.link_hops());
        // With the primary's first edge down, both engines detour.
        let p = pg.primary.switches();
        let key = if p[0] <= p[1] {
            (p[0], p[1])
        } else {
            (p[1], p[0])
        };
        let down: HashSet<_> = [key].into_iter().collect();
        let a = pg.shortest_within(&down).unwrap();
        let b = router.shortest(&down).unwrap();
        assert_eq!(a.link_hops(), b.link_hops());
        assert!(b.is_valid_in(&g.topology));
        // Reusable: a second query still works.
        assert!(router.shortest(&none).is_some());
    }

    #[test]
    fn removed_edge_disappears() {
        let g = generators::testbed();
        let mut rng = StdRng::seed_from_u64(31);
        let mut pg = build(&g.topology, HostId(0), HostId(26), &params(2, 2), &mut rng).unwrap();
        let p = pg.primary.switches().to_vec();
        assert!(pg.contains_edge(p[0], p[1]));
        assert!(pg.remove_edge(p[0], p[1]));
        assert!(!pg.contains_edge(p[0], p[1]));
        assert!(!pg.remove_edge(p[0], p[1]));
    }
}
