//! The telemetry spine: a deterministic metrics registry plus a bounded
//! structured trace ring, shared by every node kind in the emulator.
//!
//! DumbNet's argument is made with measurements (§7 of the paper), so
//! the reproduction needs observability that is *part of the
//! determinism contract* rather than bolted on: two same-seed runs must
//! produce byte-identical snapshots, and a snapshot must never perturb
//! the run that produced it.
//!
//! # Model
//!
//! Metrics are cheap shared handles — [`Counter`], [`Gauge`],
//! fixed-bucket [`Histogram`] — created by a node at construction time
//! and *registered* into the world's [`Telemetry`] registry under a
//! [`MetricKey`] of `(NodeKind, node id, metric name)`. The handle is
//! the storage: the node increments through the handle on its hot path
//! (one relaxed atomic add), and a [`TelemetrySnapshot`] reads the same
//! storage through the registry. Registration is idempotent, so a node
//! that is crash-restarted re-registers the same handles without losing
//! counts.
//!
//! # Sharded worlds
//!
//! Handles and the registry are `Send + Sync` (`Arc` over atomics, a
//! mutex for histograms and the registry map), so the sharded PDES
//! engine gives every shard its *own* registry and merges at snapshot
//! time with [`TelemetrySnapshot::absorb`]: counters and gauges sum,
//! histograms sum bucket-wise. Each increment happens on exactly one
//! shard (the one that owns the incrementing node, or the sending side
//! of a wire), so the merged snapshot of an N-shard run equals the
//! single-registry snapshot of the same seed — the cross-shard
//! determinism gate in `perf_hotpath` pins this byte-for-byte.
//!
//! # Determinism rules
//!
//! * The registry is a `BTreeMap`; snapshots, JSON export and diffs
//!   iterate in key order. No hash-map iteration order anywhere.
//! * Metric values are integers (counts, nanoseconds, bytes). No
//!   floats, so no formatting or accumulation-order variance.
//! * Trace events are stamped with *sim time*, never wall clock.
//! * Snapshots are pure reads; taking one cannot change any counter.
//!
//! # Trace ring
//!
//! [`TraceEvent`]s — categorized packet / election / chaos / route —
//! go into a bounded ring ([`Telemetry::trace`]); when it wraps, the
//! oldest events are dropped and counted. The soak harness dumps the
//! tail on invariant violation, so a CI failure is diagnosable from
//! its log alone.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dumbnet_types::SimTime;

/// Which layer of the emulator a metric or trace event belongs to.
///
/// Part of [`MetricKey`]; the ordering (world, link, switch, host,
/// controller) is the snapshot iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// The simulation engine itself (event totals, drop totals).
    World,
    /// One wire, identified by its `WireId` index.
    Link,
    /// A dumb switch, identified by its `SwitchId`.
    Switch,
    /// A host agent, identified by its `HostId`.
    Host,
    /// A controller instance, identified by its `HostId`.
    Controller,
}

impl NodeKind {
    /// Stable lowercase name used in JSON and diff output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::World => "world",
            NodeKind::Link => "link",
            NodeKind::Switch => "switch",
            NodeKind::Host => "host",
            NodeKind::Controller => "controller",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Registry key: `(kind, node id, metric name)`.
///
/// Names are `&'static str` by convention (metric names are code, not
/// data) but stored as `String` so derived per-peer metrics can be
/// built at runtime when needed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Layer the metric belongs to.
    pub kind: NodeKind,
    /// Node identity within the layer (id value, wire index, 0 for world).
    pub node: u64,
    /// Metric name, `snake_case`.
    pub name: String,
}

impl MetricKey {
    /// Builds a key.
    #[must_use]
    pub fn new(kind: NodeKind, node: u64, name: impl Into<String>) -> MetricKey {
        MetricKey {
            kind,
            node,
            name: name.into(),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.kind, self.node, self.name)
    }
}

/// A monotonically increasing `u64` metric handle.
///
/// Cloning shares the underlying atomic; the registry holds one clone
/// and the owning node another, so hot-path increments are a single
/// relaxed atomic add with no registry lookup. Relaxed ordering is
/// sufficient: within a shard all accesses are single-threaded, and
/// across shards reads only happen at synchronization barriers.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. For totals maintained elsewhere and
    /// mirrored into the registry (e.g. synced in a publish hook);
    /// prefer [`Counter::inc`] for live counters.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed, settable metric handle (levels: queue depths, leadership,
/// version numbers).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram state shared behind a [`Histogram`] handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing. A value `v` lands
    /// in the first bucket with `v <= bounds[i]`; larger values land in
    /// the overflow bucket.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the final slot is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The bucket index `observe(v)` would increment.
    #[must_use]
    pub fn bucket_for(&self, v: u64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }
}

/// A fixed-bucket histogram handle (see [`HistogramSnapshot`] for the
/// bucket semantics). Cloning shares the underlying state. Observations
/// take a mutex, but within a shard the handle is only ever touched
/// from that shard's thread, so the lock is uncontended.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistogramSnapshot>>);

impl Histogram {
    /// Creates a histogram with the given inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics unless `bounds` is strictly increasing (an empty bounds
    /// list — a single overflow bucket — is allowed).
    #[must_use]
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram(Arc::new(Mutex::new(HistogramSnapshot {
            bounds,
            counts,
            count: 0,
            sum: 0,
        })))
    }

    /// Doubling bounds: `first, first*2, …` for `buckets` bounds.
    /// Convenient for latency-like values spanning orders of magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `first` is zero (the bounds would not increase).
    #[must_use]
    pub fn doubling(first: u64, buckets: usize) -> Histogram {
        assert!(first > 0, "doubling histogram needs a positive first bound");
        let bounds = (0..buckets)
            .scan(first, |b, _| {
                let cur = *b;
                *b = b.saturating_mul(2);
                Some(cur)
            })
            .collect::<Vec<u64>>();
        let mut dedup = bounds;
        dedup.dedup(); // saturation can repeat u64::MAX
        Histogram::new(dedup)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let mut h = self.0.lock().expect("histogram lock");
        let ix = h.bucket_for(v);
        h.counts[ix] += 1;
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
    }

    /// A copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.lock().expect("histogram lock").clone()
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::Gauge(v) => write!(f, "{v}"),
            MetricValue::Histogram(h) => {
                write!(f, "histogram(count={}, sum={})", h.count, h.sum)
            }
        }
    }
}

/// Registered live handle (internal).
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn read(&self) -> MetricValue {
        match self {
            Handle::Counter(c) => MetricValue::Counter(c.get()),
            Handle::Gauge(g) => MetricValue::Gauge(g.get()),
            Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

/// Category of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Data-plane happenings: drops, ECN marks, storms.
    Packet,
    /// Leadership: elections, takeovers, step-downs.
    Election,
    /// Injected faults and admin actions: crashes, restarts, link flips.
    Chaos,
    /// Path computation and dissemination: patches, cache invalidation.
    Route,
}

impl TraceCategory {
    /// Stable lowercase name used in dumps.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCategory::Packet => "packet",
            TraceCategory::Election => "election",
            TraceCategory::Chaos => "chaos",
            TraceCategory::Route => "route",
        }
    }
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured trace record, stamped with sim time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim time the event was emitted.
    pub at: SimTime,
    /// Event category.
    pub category: TraceCategory,
    /// Layer of the emitting node.
    pub kind: NodeKind,
    /// Emitting node's id within the layer.
    pub node: u64,
    /// Human-readable detail line.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ns] {:<8} {}/{}: {}",
            self.at.nanos(),
            self.category,
            self.kind,
            self.node,
            self.detail
        )
    }
}

/// Bounded trace ring (internal).
#[derive(Debug)]
struct TraceRing {
    cap: usize,
    buf: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

#[derive(Debug)]
struct Registry {
    metrics: BTreeMap<MetricKey, Handle>,
    trace: TraceRing,
}

/// The shared telemetry registry handle.
///
/// One per world shard; cloned into every `Ctx` so nodes register
/// handles without manual plumbing. Cloning is cheap (an `Arc` bump)
/// and all clones observe the same registry. The handle is `Send`, so
/// sharded worlds can carry their registries across worker threads;
/// within a shard all access is single-threaded, so the internal mutex
/// is uncontended.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Mutex<Registry>>,
    trace_cap: usize,
}

/// Default trace ring capacity.
pub const DEFAULT_TRACE_CAP: usize = 512;

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(DEFAULT_TRACE_CAP)
    }
}

impl Telemetry {
    /// Creates a registry whose trace ring keeps the most recent
    /// `trace_cap` events (0 disables tracing entirely).
    #[must_use]
    pub fn new(trace_cap: usize) -> Telemetry {
        Telemetry {
            inner: Arc::new(Mutex::new(Registry {
                metrics: BTreeMap::new(),
                trace: TraceRing {
                    cap: trace_cap,
                    buf: std::collections::VecDeque::new(),
                    dropped: 0,
                },
            })),
            trace_cap,
        }
    }

    /// Registers (or re-registers) a counter handle under `key`.
    /// Idempotent: registering the same handle again is a no-op, and a
    /// restarted node re-registering a fresh handle simply replaces the
    /// old one.
    pub fn register_counter(&self, kind: NodeKind, node: u64, name: &'static str, c: &Counter) {
        self.inner
            .lock()
            .expect("telemetry lock")
            .metrics
            .insert(MetricKey::new(kind, node, name), Handle::Counter(c.clone()));
    }

    /// Registers (or re-registers) a gauge handle under `key`.
    pub fn register_gauge(&self, kind: NodeKind, node: u64, name: &'static str, g: &Gauge) {
        self.inner
            .lock()
            .expect("telemetry lock")
            .metrics
            .insert(MetricKey::new(kind, node, name), Handle::Gauge(g.clone()));
    }

    /// Registers (or re-registers) a histogram handle under `key`.
    pub fn register_histogram(&self, kind: NodeKind, node: u64, name: &'static str, h: &Histogram) {
        self.inner.lock().expect("telemetry lock").metrics.insert(
            MetricKey::new(kind, node, name),
            Handle::Histogram(h.clone()),
        );
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("telemetry lock").metrics.len()
    }

    /// Whether no metrics are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("telemetry lock")
            .metrics
            .is_empty()
    }

    /// Whether trace events are being kept (capacity > 0). Callers can
    /// skip formatting details when tracing is disabled.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace_cap > 0
    }

    /// Appends a trace event to the ring.
    pub fn trace(&self, ev: TraceEvent) {
        self.inner.lock().expect("telemetry lock").trace.push(ev);
    }

    /// Convenience: builds and appends a trace event.
    pub fn emit(
        &self,
        at: SimTime,
        category: TraceCategory,
        kind: NodeKind,
        node: u64,
        detail: impl Into<String>,
    ) {
        self.trace(TraceEvent {
            at,
            category,
            kind,
            node,
            detail: detail.into(),
        });
    }

    /// The most recent `n` trace events, oldest first, plus the number
    /// of older events the ring has already discarded.
    #[must_use]
    pub fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64) {
        let reg = self.inner.lock().expect("telemetry lock");
        let skip = reg.trace.buf.len().saturating_sub(n);
        let tail: Vec<TraceEvent> = reg.trace.buf.iter().skip(skip).cloned().collect();
        (tail, reg.trace.dropped + skip as u64)
    }

    /// Reads every registered metric into an ordered snapshot. A pure
    /// read: no counter is modified.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let reg = self.inner.lock().expect("telemetry lock");
        TelemetrySnapshot {
            metrics: reg
                .metrics
                .iter()
                .map(|(k, h)| (k.clone(), h.read()))
                .collect(),
        }
    }
}

/// An ordered, point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Metric values in `BTreeMap` (deterministic) key order.
    pub metrics: BTreeMap<MetricKey, MetricValue>,
}

impl TelemetrySnapshot {
    /// The value under `(kind, node, name)`, if registered.
    #[must_use]
    pub fn get(&self, kind: NodeKind, node: u64, name: &str) -> Option<&MetricValue> {
        self.metrics.get(&MetricKey::new(kind, node, name))
    }

    /// Counter value under the key, or 0 when absent / not a counter.
    #[must_use]
    pub fn counter(&self, kind: NodeKind, node: u64, name: &str) -> u64 {
        match self.get(kind, node, name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level under the key, or 0 when absent / not a gauge.
    #[must_use]
    pub fn gauge(&self, kind: NodeKind, node: u64, name: &str) -> i64 {
        match self.get(kind, node, name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of the counter `name` across every node of `kind`.
    #[must_use]
    pub fn sum_counters(&self, kind: NodeKind, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.kind == kind && k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// `(node, counter value)` for the counter `name` on every node of
    /// `kind`, in ascending node order.
    #[must_use]
    pub fn counters_by_node(&self, kind: NodeKind, name: &str) -> Vec<(u64, u64)> {
        self.metrics
            .iter()
            .filter(|(k, _)| k.kind == kind && k.name == name)
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) => Some((k.node, *c)),
                _ => None,
            })
            .collect()
    }

    /// Folds another shard's snapshot into this one: counters and
    /// gauges under the same key sum (wrapping), histograms with equal
    /// bounds sum bucket-wise, and keys present in only one snapshot
    /// carry over unchanged. This is the cross-shard merge rule — each
    /// increment happens on exactly one shard, so summing per-shard
    /// registries reconstructs the single-registry totals.
    ///
    /// # Panics
    ///
    /// Panics if the same key holds different metric types or
    /// histograms with different bounds (impossible when the shards
    /// were built from the same program).
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.metrics {
            match self.metrics.get_mut(k) {
                None => {
                    self.metrics.insert(k.clone(), v.clone());
                }
                Some(MetricValue::Counter(a)) => {
                    if let MetricValue::Counter(b) = v {
                        *a = a.wrapping_add(*b);
                    } else {
                        panic!("telemetry merge: {k} changed type across shards");
                    }
                }
                Some(MetricValue::Gauge(a)) => {
                    if let MetricValue::Gauge(b) = v {
                        *a = a.wrapping_add(*b);
                    } else {
                        panic!("telemetry merge: {k} changed type across shards");
                    }
                }
                Some(MetricValue::Histogram(a)) => {
                    if let MetricValue::Histogram(b) = v {
                        assert_eq!(
                            a.bounds, b.bounds,
                            "telemetry merge: {k} histogram bounds differ across shards"
                        );
                        for (ca, cb) in a.counts.iter_mut().zip(&b.counts) {
                            *ca += cb;
                        }
                        a.count += b.count;
                        a.sum = a.sum.wrapping_add(b.sum);
                    } else {
                        panic!("telemetry merge: {k} changed type across shards");
                    }
                }
            }
        }
    }

    /// Merges an iterator of per-shard snapshots with
    /// [`TelemetrySnapshot::absorb`].
    #[must_use]
    pub fn merged<I: IntoIterator<Item = TelemetrySnapshot>>(parts: I) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::default();
        for p in parts {
            out.absorb(&p);
        }
        out
    }

    /// Entries that changed (or appeared) relative to `before`, in key
    /// order. Counters and gauges carry their numeric delta.
    #[must_use]
    pub fn diff<'a>(&'a self, before: &'a TelemetrySnapshot) -> TelemetryDiff {
        let mut entries = Vec::new();
        for (k, after) in &self.metrics {
            let prev = before.metrics.get(k);
            if prev != Some(after) {
                entries.push(DiffEntry {
                    key: k.clone(),
                    before: prev.cloned(),
                    after: after.clone(),
                });
            }
        }
        TelemetryDiff { entries }
    }

    /// Deterministic JSON export: one flat array of metric objects in
    /// key order, integers only, no whitespace variance. Two snapshots
    /// compare equal iff their JSON is byte-identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.metrics.len() + 16);
        out.push_str("{\"metrics\":[");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":\"");
            out.push_str(k.kind.as_str());
            out.push_str("\",\"node\":");
            out.push_str(&k.node.to_string());
            out.push_str(",\"name\":\"");
            json_escape_into(&mut out, &k.name);
            out.push_str("\",");
            match v {
                MetricValue::Counter(c) => {
                    out.push_str("\"type\":\"counter\",\"value\":");
                    out.push_str(&c.to_string());
                }
                MetricValue::Gauge(g) => {
                    out.push_str("\"type\":\"gauge\",\"value\":");
                    out.push_str(&g.to_string());
                }
                MetricValue::Histogram(h) => {
                    out.push_str("\"type\":\"histogram\",\"bounds\":");
                    json_u64_array_into(&mut out, &h.bounds);
                    out.push_str(",\"counts\":");
                    json_u64_array_into(&mut out, &h.counts);
                    out.push_str(",\"count\":");
                    out.push_str(&h.count.to_string());
                    out.push_str(",\"sum\":");
                    out.push_str(&h.sum.to_string());
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// The changed entries between two snapshots (see
/// [`TelemetrySnapshot::diff`]). `Display` prints one line per entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryDiff {
    /// Changed / new entries in key order.
    pub entries: Vec<DiffEntry>,
}

/// One changed metric in a [`TelemetryDiff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// The metric key.
    pub key: MetricKey,
    /// Value in the `before` snapshot (`None` = newly registered).
    pub before: Option<MetricValue>,
    /// Value in the `after` snapshot.
    pub after: MetricValue,
}

impl TelemetryDiff {
    /// Whether nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for TelemetryDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            match (&e.before, &e.after) {
                (Some(MetricValue::Counter(b)), MetricValue::Counter(a)) => {
                    writeln!(f, "{}: {b} -> {a} (+{})", e.key, a.wrapping_sub(*b))?;
                }
                (Some(MetricValue::Gauge(b)), MetricValue::Gauge(a)) => {
                    writeln!(f, "{}: {b} -> {a} ({:+})", e.key, a.wrapping_sub(*b))?;
                }
                (Some(b), a) => writeln!(f, "{}: {b} -> {a}", e.key)?,
                (None, a) => writeln!(f, "{}: (new) {a}", e.key)?,
            }
        }
        Ok(())
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_u64_array_into(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + dumbnet_types::SimDuration::from_nanos(ns)
    }

    #[test]
    fn counter_handles_share_state() {
        let tele = Telemetry::new(0);
        let c = Counter::new();
        tele.register_counter(NodeKind::Host, 3, "pings", &c);
        c.inc();
        c.add(4);
        assert_eq!(tele.snapshot().counter(NodeKind::Host, 3, "pings"), 5);
        // Re-registering (restart) keeps the count.
        tele.register_counter(NodeKind::Host, 3, "pings", &c);
        assert_eq!(tele.snapshot().counter(NodeKind::Host, 3, "pings"), 5);
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(vec![10, 20, 40]);
        for v in [0, 10] {
            h.observe(v); // first bucket: v <= 10
        }
        h.observe(11); // second bucket
        h.observe(20); // second bucket (inclusive)
        h.observe(40); // third bucket (inclusive)
        h.observe(41); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1, 1]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 122);
    }

    #[test]
    fn doubling_bounds() {
        let h = Histogram::doubling(1000, 4);
        assert_eq!(h.snapshot().bounds, vec![1000, 2000, 4000, 8000]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![5, 5]);
    }

    #[test]
    fn snapshot_iterates_in_key_order() {
        let tele = Telemetry::new(0);
        let c = Counter::new();
        tele.register_counter(NodeKind::Controller, 0, "zeta", &c);
        tele.register_counter(NodeKind::Host, 9, "alpha", &c);
        tele.register_counter(NodeKind::Host, 1, "beta", &c);
        tele.register_counter(NodeKind::World, 0, "events", &c);
        let keys: Vec<String> = tele
            .snapshot()
            .metrics
            .keys()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            keys,
            vec![
                "world/0/events",
                "host/1/beta",
                "host/9/alpha",
                "controller/0/zeta",
            ]
        );
    }

    #[test]
    fn json_is_deterministic_and_reflects_order() {
        let tele = Telemetry::new(0);
        let c = Counter::new();
        c.add(2);
        let g = Gauge::new();
        g.set(-1);
        tele.register_counter(NodeKind::World, 0, "events", &c);
        tele.register_gauge(NodeKind::Controller, 5, "is_leader", &g);
        let json = tele.snapshot().to_json();
        assert_eq!(
            json,
            "{\"metrics\":[\
             {\"kind\":\"world\",\"node\":0,\"name\":\"events\",\"type\":\"counter\",\"value\":2},\
             {\"kind\":\"controller\",\"node\":5,\"name\":\"is_leader\",\"type\":\"gauge\",\"value\":-1}\
             ]}"
        );
        assert_eq!(json, tele.snapshot().to_json());
    }

    #[test]
    fn diff_reports_deltas_and_new_entries() {
        let tele = Telemetry::new(0);
        let c = Counter::new();
        tele.register_counter(NodeKind::Switch, 2, "forwarded", &c);
        let before = tele.snapshot();
        c.add(10);
        let g = Gauge::new();
        tele.register_gauge(NodeKind::Switch, 2, "depth", &g);
        let after = tele.snapshot();
        let diff = after.diff(&before);
        assert_eq!(diff.entries.len(), 2);
        let text = diff.to_string();
        assert!(text.contains("switch/2/forwarded: 0 -> 10 (+10)"), "{text}");
        assert!(text.contains("switch/2/depth: (new) 0"), "{text}");
        assert!(after.diff(&after).is_empty());
    }

    #[test]
    fn trace_ring_wraps_and_counts_drops() {
        let tele = Telemetry::new(3);
        for i in 0..5u64 {
            tele.emit(
                t(i),
                TraceCategory::Chaos,
                NodeKind::World,
                0,
                format!("e{i}"),
            );
        }
        let (tail, older) = tele.trace_tail(2);
        assert_eq!(older, 3); // 2 wrapped out of the ring + 1 skipped.
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "e3");
        assert_eq!(tail[1].detail, "e4");
    }

    #[test]
    fn trace_cap_zero_disables() {
        let tele = Telemetry::new(0);
        assert!(!tele.trace_enabled());
        tele.emit(t(0), TraceCategory::Packet, NodeKind::Link, 1, "drop");
        let (tail, dropped) = tele.trace_tail(10);
        assert!(tail.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn handles_and_registry_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Counter>();
        assert_send::<Gauge>();
        assert_send::<Histogram>();
        assert_send::<Telemetry>();
    }

    #[test]
    fn absorb_sums_counters_gauges_and_histograms() {
        let mk = |c: u64, g: i64, hv: &[u64]| {
            let tele = Telemetry::new(0);
            let cnt = Counter::new();
            cnt.add(c);
            tele.register_counter(NodeKind::World, 0, "events", &cnt);
            let gauge = Gauge::new();
            gauge.set(g);
            tele.register_gauge(NodeKind::Controller, 1, "is_leader", &gauge);
            let h = Histogram::new(vec![10, 20]);
            for &v in hv {
                h.observe(v);
            }
            tele.register_histogram(NodeKind::Host, 2, "rtt", &h);
            tele.snapshot()
        };
        let merged = TelemetrySnapshot::merged([mk(3, 1, &[5, 15]), mk(4, -1, &[25])]);
        assert_eq!(merged.counter(NodeKind::World, 0, "events"), 7);
        assert_eq!(merged.gauge(NodeKind::Controller, 1, "is_leader"), 0);
        match merged.get(NodeKind::Host, 2, "rtt") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.counts, vec![1, 1, 1]);
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 45);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Keys present in only one shard carry over.
        let solo = Telemetry::new(0);
        let c = Counter::new();
        c.add(9);
        solo.register_counter(NodeKind::Switch, 7, "forwarded", &c);
        let merged = TelemetrySnapshot::merged([merged, solo.snapshot()]);
        assert_eq!(merged.counter(NodeKind::Switch, 7, "forwarded"), 9);
        assert_eq!(merged.counter(NodeKind::World, 0, "events"), 7);
    }

    #[test]
    fn aggregation_helpers() {
        let tele = Telemetry::new(0);
        let (a, b) = (Counter::new(), Counter::new());
        a.add(3);
        b.add(4);
        tele.register_counter(NodeKind::Host, 1, "sent", &a);
        tele.register_counter(NodeKind::Host, 2, "sent", &b);
        let snap = tele.snapshot();
        assert_eq!(snap.sum_counters(NodeKind::Host, "sent"), 7);
        assert_eq!(
            snap.counters_by_node(NodeKind::Host, "sent"),
            vec![(1, 3), (2, 4)]
        );
    }
}
