//! Property tests for histogram bucket boundaries.
//!
//! The bucket rule is load-bearing for every latency figure: a value
//! `v` lands in the first bucket whose inclusive upper bound is `>= v`,
//! and anything beyond the last bound lands in the overflow slot. These
//! tests pin that rule against arbitrary bound layouts and inputs, and
//! pin the doubling-constructor geometry the RTT histograms rely on.

use proptest::collection::vec;
use proptest::prelude::*;

use dumbnet_telemetry::Histogram;

/// Strictly increasing bounds, built from positive gaps so the
/// constructor's monotonicity assertion always holds.
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    vec(1u64..1_000, 1..8).prop_map(|gaps| {
        gaps.iter()
            .scan(0u64, |acc, &g| {
                *acc += g;
                Some(*acc)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn observations_land_in_the_defined_bucket(
        bounds in bounds_strategy(),
        values in vec(0u64..10_000, 1..64),
    ) {
        let h = Histogram::new(bounds.clone());
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        // Recompute every bucket straight from the definition.
        let mut expect = vec![0u64; bounds.len() + 1];
        for &v in &values {
            let ix = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            expect[ix] += 1;
        }
        prop_assert_eq!(snap.counts, expect);
    }

    #[test]
    fn bounds_are_inclusive_upper_edges(bounds in bounds_strategy()) {
        let snap = Histogram::new(bounds.clone()).snapshot();
        prop_assert_eq!(snap.bucket_for(0), 0);
        for (ix, &b) in bounds.iter().enumerate() {
            // A value exactly on a bound belongs to that bucket…
            prop_assert_eq!(snap.bucket_for(b), ix);
            // …and one past it belongs to the next (possibly overflow).
            prop_assert_eq!(snap.bucket_for(b + 1), ix + 1);
        }
    }

    #[test]
    fn doubling_constructor_doubles(first in 1u64..1_000, buckets in 1usize..12) {
        let snap = Histogram::doubling(first, buckets).snapshot();
        prop_assert_eq!(snap.bounds[0], first);
        prop_assert!(snap.bounds.windows(2).all(|w| w[1] == w[0] * 2));
        prop_assert_eq!(snap.bounds.len(), buckets);
        prop_assert_eq!(snap.counts.len(), buckets + 1);
        prop_assert_eq!(snap.count, 0);
    }
}
