//! The packet-level discrete-event engine.
//!
//! A [`World`] holds nodes (anything implementing [`Node`]) and the wires
//! between their ports. Wires model propagation latency, store-and-forward
//! serialization at the sender, and a bounded FIFO output queue per
//! direction (tail-drop once the queueing delay would exceed the bound).
//!
//! Handlers receive a [`Ctx`] through which they read the clock, send
//! packets, arm timers, inspect their own wiring, and draw deterministic
//! randomness. The dispatched node is moved out of the node table for
//! the duration of its handler, so the [`Ctx`] can borrow the rest of
//! the engine ([`Core`](World)) mutably and apply sends and timers
//! immediately — a packet goes straight from the handler onto the wire
//! with no intermediate action buffer, in exactly the order the handler
//! emitted it.
//!
//! # Canonical event order and shard invariance
//!
//! Every queued event carries a 64-bit ordering key derived from its
//! *content*: `(origin + 1) << 32 | seq` where `origin` is the node
//! whose handler caused the event and `seq` that node's emission
//! counter, or origin 0 with a world-level counter for external
//! scheduling (injections, chaos plans). Same-instant events fire in
//! ascending key order, which depends only on *what was emitted*, never
//! on which queue it was pushed into — so an N-shard
//! [`ShardedWorld`](crate::ShardedWorld)(crate::shard::ShardedWorld) run pops the exact same
//! per-node event sequence as a single `World`. For the same reason all
//! randomness is decentralized: [`Ctx::rng`] draws from a per-node
//! stream and fault coin-flips from a per-(wire, direction) stream,
//! each derived from the world seed, so draw sequences are independent
//! of global event interleaving.
//!
//! A `World` doubles as one shard of a [`ShardedWorld`](crate::ShardedWorld): it then holds
//! the full node/wire tables but only its own cell's nodes, and
//! cross-cell arrivals detour through an outbox exchanged at
//! synchronization windows instead of the local queue.

use std::any::Any;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dumbnet_packet::Packet;
use dumbnet_telemetry::{Counter, NodeKind, Telemetry, TelemetrySnapshot, TraceCategory};
use dumbnet_types::{Bandwidth, DumbNetError, PortNo, Result, SimDuration, SimTime};

use crate::event::EventQueue;
use crate::faults::FaultProfile;

/// Address of a node inside a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeAddr(pub usize);

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Physical characteristics of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Serialization bandwidth (each direction independently).
    pub bandwidth: Bandwidth,
    /// Maximum tolerated queueing delay before tail-drop.
    pub max_queue: SimDuration,
    /// ECN marking threshold: packets that queue longer than this get
    /// their congestion-experienced bit set (§8 ECN support; marking is
    /// stateless — a comparison against the instantaneous queue depth).
    /// `None` disables marking.
    pub ecn_threshold: Option<SimDuration>,
}

impl LinkParams {
    /// A typical data-center 10 GbE cable: 1 µs propagation, 10 Gbps,
    /// 200 µs of buffering.
    #[must_use]
    pub fn ten_gig() -> LinkParams {
        LinkParams {
            latency: SimDuration::from_micros(1),
            bandwidth: Bandwidth::gbps(10),
            max_queue: SimDuration::from_micros(200),
            ecn_threshold: Some(SimDuration::from_micros(50)),
        }
    }

    /// A 1 GbE link (the FPGA prototype's ports).
    #[must_use]
    pub fn one_gig() -> LinkParams {
        LinkParams {
            latency: SimDuration::from_micros(1),
            bandwidth: Bandwidth::gbps(1),
            max_queue: SimDuration::from_millis(2),
            ecn_threshold: Some(SimDuration::from_micros(500)),
        }
    }
}

/// Behaviour plugged into the engine: a switch, host, or controller.
///
/// `Send` is a supertrait so a node can live inside a
/// [`ShardedWorld`](crate::ShardedWorld)(crate::shard::ShardedWorld) shard that executes on
/// a worker thread. Nodes never share state across threads — each is
/// owned by exactly one shard — so `Send` (not `Sync`) is all the
/// engine asks for.
pub trait Node: Send {
    /// Called once when the world starts running.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet arrived on `in_port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet);

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// The wire on `port` changed state (carrier detect).
    fn on_link_change(&mut self, _ctx: &mut Ctx<'_>, _port: PortNo, _up: bool) {}

    /// The node came back after a crash scheduled via
    /// [`World::schedule_restart`]. All timers armed before the crash
    /// are gone; persistent state (fields) survives, volatile progress
    /// does not. The default does nothing — stateless nodes just resume.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called by [`World::telemetry_snapshot`] immediately before the
    /// registry is read, so nodes can sync derived values (cache
    /// hit/miss totals, table sizes) into their registered handles.
    /// Must not touch simulation state; the default does nothing.
    fn publish_telemetry(&mut self) {}

    /// Downcast support so experiments can read node-internal state after
    /// a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Identity of a wire inside a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireId(usize);

impl WireId {
    /// Builds a wire ID from its raw index (wires are numbered in
    /// creation order, starting at zero).
    #[must_use]
    pub fn from_raw(ix: usize) -> WireId {
        WireId(ix)
    }

    /// The raw index.
    #[must_use]
    pub fn raw(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
struct Wire {
    a: (NodeAddr, PortNo),
    b: (NodeAddr, PortNo),
    params: LinkParams,
    up: bool,
    /// Sender-side busy horizon per direction (a→b, b→a).
    busy: [SimTime; 2],
}

#[derive(Debug, Default)]
struct Wiring {
    wires: Vec<Wire>,
    /// Dense per-node port table, indexed `[node][port]` (ports are
    /// 1..=254, so slot 0 is always empty). Replaces a hash map on the
    /// transmit hot path: wire lookup is two array indexes.
    port_map: Vec<Vec<Option<WireId>>>,
}

impl Wiring {
    fn at(&self, node: NodeAddr, port: PortNo) -> Option<WireId> {
        *self
            .port_map
            .get(node.0)?
            .get(usize::from(port.get()))
            .unwrap_or(&None)
    }

    fn map_port(&mut self, node: NodeAddr, port: PortNo, id: WireId) {
        if self.port_map.len() <= node.0 {
            self.port_map.resize_with(node.0 + 1, Vec::new);
        }
        let ports = &mut self.port_map[node.0];
        let ix = usize::from(port.get());
        if ports.len() <= ix {
            ports.resize(ix + 1, None);
        }
        ports[ix] = Some(id);
    }
}

enum Event {
    Start(NodeAddr),
    Arrive {
        node: NodeAddr,
        port: PortNo,
        pkt: Packet,
        /// The wire that carried the packet (`None` for injections).
        via: Option<WireId>,
    },
    /// A deferred transmission reaching the wire (models host-stack
    /// latency before the NIC).
    Egress {
        node: NodeAddr,
        port: PortNo,
        pkt: Packet,
    },
    Timer {
        node: NodeAddr,
        token: u64,
        /// Crash epoch the timer was armed in; a stale epoch means the
        /// node crashed after arming and the timer must not fire.
        epoch: u32,
    },
    AdminLink {
        wire: WireId,
        up: bool,
        /// Whether this shard counts/traces the event. A sharded run
        /// mirrors admin events into every shard that owns an affected
        /// endpoint; exactly one copy is `counted`, so the merged
        /// `events` total matches the single-shard run.
        counted: bool,
    },
    /// A scheduled fault-profile replacement (gray faults healing or
    /// worsening mid-run).
    AdminFault {
        wire: WireId,
        profile: Box<FaultProfile>,
        counted: bool,
    },
    /// The node dies: arrivals and timers are discarded until restart,
    /// and every incident wire goes down (neighbours see carrier loss).
    Crash {
        node: NodeAddr,
        counted: bool,
    },
    /// The node comes back: incident wires return to service and the
    /// node's [`Node::on_restart`] hook runs.
    Restart {
        node: NodeAddr,
        counted: bool,
    },
}

impl Event {
    /// Whether this event increments the world `events` counter (and
    /// emits chaos traces). False only for uncounted admin mirrors in
    /// sharded runs.
    fn counted(&self) -> bool {
        match self {
            Event::AdminLink { counted, .. }
            | Event::AdminFault { counted, .. }
            | Event::Crash { counted, .. }
            | Event::Restart { counted, .. } => *counted,
            _ => true,
        }
    }
}

/// A packet arrival bound for another shard, buffered in the sending
/// shard's outbox until the next synchronization-window exchange.
#[derive(Debug)]
pub(crate) struct Crossing {
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) node: NodeAddr,
    pub(crate) port: PortNo,
    pub(crate) pkt: Packet,
    pub(crate) via: WireId,
}

/// Counters the engine keeps while running.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorldStats {
    /// Events dispatched.
    pub events: u64,
    /// Packets accepted onto a wire.
    pub packets_sent: u64,
    /// Packets handed to a node.
    pub packets_delivered: u64,
    /// Packets dropped because the wire was down or the port unwired.
    pub drops_down: u64,
    /// Packets dropped by queue overflow.
    pub drops_queue: u64,
    /// Packets lost to injected faults (probabilistic loss and burst
    /// windows; see [`FaultProfile`]).
    pub drops_loss: u64,
    /// Packets bit-corrupted in flight and rejected before delivery.
    pub drops_corrupt: u64,
    /// Packets discarded because the destination node was crashed.
    pub drops_crashed: u64,
    /// Packets ECN-marked for queueing past a link's threshold.
    pub ecn_marked: u64,
}

/// Per-wire counters, queryable after a run via [`World::link_stats`].
///
/// A packet that the wire *accepts* increments `sent`; every accepted
/// packet ends in exactly one of `delivered`, `drops_loss`,
/// `drops_corrupt`, `drops_burst`, or `drops_crashed`. Refusals before
/// acceptance land in `drops_down` / `drops_queue`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted onto this wire.
    pub sent: u64,
    /// Packets handed to the far-end node.
    pub delivered: u64,
    /// Packets refused because the wire was administratively down.
    pub drops_down: u64,
    /// Packets refused by queue overflow.
    pub drops_queue: u64,
    /// Packets lost to probabilistic loss.
    pub drops_loss: u64,
    /// Packets corrupted in flight (dropped before delivery).
    pub drops_corrupt: u64,
    /// Packets swallowed by a burst-drop window.
    pub drops_burst: u64,
    /// Packets discarded on arrival because the far end was crashed.
    pub drops_crashed: u64,
    /// Packets ECN-marked on this wire.
    pub ecn_marked: u64,
    /// Packets whose delivery was delayed by jitter.
    pub jittered: u64,
}

/// Live engine counters: [`Counter`] handles registered with the
/// world's [`Telemetry`] registry under `(NodeKind::World, 0, name)`.
/// [`World::stats`] assembles the [`WorldStats`] view from these.
#[derive(Debug, Default, Clone)]
struct WorldCounters {
    events: Counter,
    packets_sent: Counter,
    packets_delivered: Counter,
    drops_down: Counter,
    drops_queue: Counter,
    drops_loss: Counter,
    drops_corrupt: Counter,
    drops_crashed: Counter,
    ecn_marked: Counter,
}

impl WorldCounters {
    fn registered(telemetry: &Telemetry) -> WorldCounters {
        let c = WorldCounters::default();
        for (name, counter) in [
            ("events", &c.events),
            ("packets_sent", &c.packets_sent),
            ("packets_delivered", &c.packets_delivered),
            ("drops_down", &c.drops_down),
            ("drops_queue", &c.drops_queue),
            ("drops_loss", &c.drops_loss),
            ("drops_corrupt", &c.drops_corrupt),
            ("drops_crashed", &c.drops_crashed),
            ("ecn_marked", &c.ecn_marked),
        ] {
            telemetry.register_counter(NodeKind::World, 0, name, counter);
        }
        c
    }

    fn view(&self) -> WorldStats {
        WorldStats {
            events: self.events.get(),
            packets_sent: self.packets_sent.get(),
            packets_delivered: self.packets_delivered.get(),
            drops_down: self.drops_down.get(),
            drops_queue: self.drops_queue.get(),
            drops_loss: self.drops_loss.get(),
            drops_corrupt: self.drops_corrupt.get(),
            drops_crashed: self.drops_crashed.get(),
            ecn_marked: self.ecn_marked.get(),
        }
    }
}

/// Live per-wire counters, registered under
/// `(NodeKind::Link, wire index, name)`; [`World::link_stats`]
/// assembles the [`LinkStats`] view.
#[derive(Debug, Default, Clone)]
struct LinkCounters {
    sent: Counter,
    delivered: Counter,
    drops_down: Counter,
    drops_queue: Counter,
    drops_loss: Counter,
    drops_corrupt: Counter,
    drops_burst: Counter,
    drops_crashed: Counter,
    ecn_marked: Counter,
    jittered: Counter,
}

impl LinkCounters {
    fn registered(telemetry: &Telemetry, wire: WireId) -> LinkCounters {
        let c = LinkCounters::default();
        for (name, counter) in [
            ("sent", &c.sent),
            ("delivered", &c.delivered),
            ("drops_down", &c.drops_down),
            ("drops_queue", &c.drops_queue),
            ("drops_loss", &c.drops_loss),
            ("drops_corrupt", &c.drops_corrupt),
            ("drops_burst", &c.drops_burst),
            ("drops_crashed", &c.drops_crashed),
            ("ecn_marked", &c.ecn_marked),
            ("jittered", &c.jittered),
        ] {
            telemetry.register_counter(NodeKind::Link, wire.0 as u64, name, counter);
        }
        c
    }

    fn view(&self) -> LinkStats {
        LinkStats {
            sent: self.sent.get(),
            delivered: self.delivered.get(),
            drops_down: self.drops_down.get(),
            drops_queue: self.drops_queue.get(),
            drops_loss: self.drops_loss.get(),
            drops_corrupt: self.drops_corrupt.get(),
            drops_burst: self.drops_burst.get(),
            drops_crashed: self.drops_crashed.get(),
            ecn_marked: self.ecn_marked.get(),
            jittered: self.jittered.get(),
        }
    }
}

/// The handler-side view of the world.
///
/// The dispatched node is out of the node table while its handler runs,
/// so the context can hold the rest of the engine mutably and a
/// [`Ctx::send`] goes straight onto the wire — same observable order as
/// the old buffered-action design, without copying each packet through
/// an intermediate queue.
pub struct Ctx<'a> {
    now: SimTime,
    addr: NodeAddr,
    /// This node's crash epoch at dispatch time (it cannot change while
    /// the handler runs; crashes are events themselves).
    epoch: u32,
    core: &'a mut Core,
}

impl Ctx<'_> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's own address.
    #[must_use]
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Puts `pkt` on the wire out of `port`. Dropped silently (and
    /// counted) if the port is unwired or its wire is down — exactly like
    /// pushing bytes into a dead NIC.
    pub fn send(&mut self, port: PortNo, pkt: Packet) {
        self.core.transmit(self.addr, port, pkt);
    }

    /// Like [`Ctx::send`], but the packet reaches the wire only after
    /// `delay` — used to model host-stack traversal time before the NIC.
    pub fn send_after(&mut self, delay: SimDuration, port: PortNo, pkt: Packet) {
        let at = self.now + delay;
        let key = self.core.next_key(self.addr);
        self.core.queue.push(
            at,
            key,
            Event::Egress {
                node: self.addr,
                port,
                pkt,
            },
        );
    }

    /// Arms a one-shot timer; `token` comes back in
    /// [`Node::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        let key = self.core.next_key(self.addr);
        self.core.queue.push(
            at,
            key,
            Event::Timer {
                node: self.addr,
                token,
                epoch: self.epoch,
            },
        );
    }

    /// The ports of this node that are wired, in ascending order.
    #[must_use]
    pub fn wired_ports(&self) -> Vec<PortNo> {
        self.core
            .wiring
            .port_map
            .get(self.addr.0)
            .map(|ports| {
                ports
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.is_some())
                    .filter_map(|(ix, _)| PortNo::new(u8::try_from(ix).ok()?))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether `port` currently has an up wire.
    #[must_use]
    pub fn link_up(&self, port: PortNo) -> bool {
        self.core
            .wiring
            .at(self.addr, port)
            .map(|w| self.core.wiring.wires[w.0].up)
            .unwrap_or(false)
    }

    /// Deterministic per-node randomness: each node draws from its own
    /// stream (derived from the world seed and the node address), so
    /// draw sequences do not depend on how events from *other* nodes
    /// interleave — the property that keeps sharded runs byte-identical
    /// to single-threaded ones.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.node_rngs[self.addr.0]
    }

    /// The world's telemetry registry: nodes register metric handles
    /// here (typically in [`Node::on_start`]) and emit trace events.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.core.telemetry
    }

    /// Convenience: appends a trace event stamped with the current sim
    /// time, skipping the formatting closure entirely when tracing is
    /// disabled.
    pub fn trace(
        &self,
        category: TraceCategory,
        kind: NodeKind,
        node: u64,
        detail: impl FnOnce() -> String,
    ) {
        if self.core.telemetry.trace_enabled() {
            self.core
                .telemetry
                .emit(self.now, category, kind, node, detail());
        }
    }
}

/// The simulation world.
///
/// Internally split in two: the node table, and everything else
/// ([`Core`]). Dispatch takes the target node out of the table and hands
/// its handler a [`Ctx`] borrowing the core mutably, so handler side
/// effects (sends, timers) apply immediately with no buffering. `World`
/// derefs to its core, so engine state reads the same either way.
pub struct World {
    nodes: Vec<Option<Box<dyn Node>>>,
    core: Core,
}

/// Everything in a [`World`] except the nodes themselves: wiring, the
/// event queue, the clock, RNG streams, and counters.
///
/// Public only because [`World`] derefs to it; the fields stay private
/// and no constructor is exported, so it cannot be built outside this
/// module.
pub struct Core {
    crashed: Vec<bool>,
    /// Bumped on every crash; invalidates timers armed before it.
    epoch: Vec<u32>,
    wiring: Wiring,
    faults: Vec<Option<FaultProfile>>,
    link_stats: Vec<LinkCounters>,
    queue: EventQueue<Event>,
    now: SimTime,
    /// World seed; per-node RNG streams are derived from it.
    seed: u64,
    /// Per-node randomness streams ([`Ctx::rng`]); stream `i` depends
    /// only on the seed and `i`, never on other nodes' draws.
    node_rngs: Vec<StdRng>,
    /// Per-node event emission counters; the low half of ordering keys.
    emit_seq: Vec<u32>,
    /// Emission counter for external (origin-0) events: injections and
    /// chaos-plan scheduling.
    ext_seq: u32,
    /// Base seed for the per-(wire, direction) fault streams. Fault
    /// coin flips never perturb application-visible randomness, and
    /// each wire direction draws independently so chaos outcomes do not
    /// depend on cross-wire event interleaving.
    fault_seed: u64,
    /// Fault streams, one pair (a→b, b→a) per wire.
    fault_rngs: Vec<[StdRng; 2]>,
    /// Externally asserted congestion per (wire, direction): while set,
    /// every packet entering that direction is ECN-marked regardless of
    /// queue depth. The hybrid engine drives this from flow-plane edge
    /// utilization so packet-plane endpoints see elephant congestion.
    ext_congestion: Vec<[bool; 2]>,
    /// Cell (shard) assignment per node; all zeros standalone.
    cells: Vec<u32>,
    /// Which cell this world instance executes (0 standalone).
    my_cell: u32,
    /// True when this world is one shard of a `ShardedWorld`: arrivals
    /// for foreign cells detour through `outbox`.
    sharded: bool,
    /// Cross-shard arrivals awaiting the next window exchange.
    outbox: Vec<Crossing>,
    telemetry: Telemetry,
    stats: WorldCounters,
    started: bool,
}

impl std::ops::Deref for World {
    type Target = Core;

    fn deref(&self) -> &Core {
        &self.core
    }
}

impl std::ops::DerefMut for World {
    fn deref_mut(&mut self) -> &mut Core {
        &mut self.core
    }
}

/// Default fault-RNG domain separator (XORed with the world seed).
const FAULT_SEED_SALT: u64 = 0xC4A0_5F00_D15E_A5ED;

/// SplitMix64 finalizer, used to derive independent sub-seeds (per
/// node, per wire direction) from one world seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sub-seed for stream `salt` of base seed `base`. Deterministic and
/// shard-invariant: it depends only on the identities, never on run
/// order.
fn derive_seed(base: u64, salt: u64) -> u64 {
    mix64(base ^ mix64(salt))
}

impl World {
    /// Creates an empty world with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> World {
        World::new_cell(seed, 0, false)
    }

    /// Creates a world that executes cell `my_cell` of a sharded run
    /// (`sharded` = false builds a plain standalone world).
    pub(crate) fn new_cell(seed: u64, my_cell: u32, sharded: bool) -> World {
        let telemetry = Telemetry::default();
        let stats = WorldCounters::registered(&telemetry);
        World {
            nodes: Vec::new(),
            core: Core {
                crashed: Vec::new(),
                epoch: Vec::new(),
                wiring: Wiring::default(),
                faults: Vec::new(),
                link_stats: Vec::new(),
                queue: EventQueue::new(),
                now: SimTime::ZERO,
                seed,
                node_rngs: Vec::new(),
                emit_seq: Vec::new(),
                ext_seq: 0,
                fault_seed: seed ^ FAULT_SEED_SALT,
                fault_rngs: Vec::new(),
                ext_congestion: Vec::new(),
                cells: Vec::new(),
                my_cell,
                sharded,
                outbox: Vec::new(),
                telemetry,
                stats,
                started: false,
            },
        }
    }

    /// The world's telemetry registry handle (cheap to clone; the same
    /// registry every [`Ctx`] hands to node handlers).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Reads every registered metric into an ordered snapshot, after
    /// giving each node a [`Node::publish_telemetry`] pass to sync
    /// derived values. Deterministic: same seed, same event sequence ⇒
    /// byte-identical [`TelemetrySnapshot::to_json`].
    pub fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        for slot in &mut self.nodes {
            if let Some(node) = slot.as_mut() {
                node.publish_telemetry();
            }
        }
        self.telemetry.snapshot()
    }

    /// Adds a node and returns its address.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeAddr {
        let cell = self.my_cell;
        self.add_slot(Some(node), cell)
    }

    /// Adds a node recorded as belonging to `cell`. On a standalone
    /// world the cell has no execution effect (everything runs here);
    /// it exists so cell-partitioned construction code works against
    /// [`Engine`](crate::shard::Engine) regardless of the engine.
    pub fn add_node_in_cell(&mut self, node: Box<dyn Node>, cell: u32) -> NodeAddr {
        self.add_slot(Some(node), cell)
    }

    /// Adds a node table slot assigned to `cell`. In a sharded run
    /// every shard has the full table, but only the owning shard holds
    /// the node itself (`Some`); foreign slots are `None` and dispatch
    /// to them is a no-op. RNG streams and emission counters exist for
    /// every slot so indices line up across shards.
    pub(crate) fn add_slot(&mut self, node: Option<Box<dyn Node>>, cell: u32) -> NodeAddr {
        let addr = NodeAddr(self.nodes.len());
        self.nodes.push(node);
        self.crashed.push(false);
        self.epoch.push(0);
        let seed = self.seed;
        self.core
            .node_rngs
            .push(StdRng::seed_from_u64(derive_seed(seed, addr.0 as u64 + 1)));
        self.core.emit_seq.push(0);
        self.core.cells.push(cell);
        addr
    }

    /// The cell a node was assigned to (0 for every node of a
    /// standalone world).
    #[must_use]
    pub fn node_cell(&self, addr: NodeAddr) -> u32 {
        self.cells.get(addr.0).copied().unwrap_or(0)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Wires `a:pa` to `b:pb`.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::PortInUse`] if either port is already
    /// wired, and [`DumbNetError::UnknownNode`] for bad addresses.
    pub fn wire(
        &mut self,
        a: NodeAddr,
        pa: PortNo,
        b: NodeAddr,
        pb: PortNo,
        params: LinkParams,
    ) -> Result<WireId> {
        for n in [a, b] {
            if n.0 >= self.nodes.len() {
                return Err(DumbNetError::UnknownNode(n.to_string()));
            }
        }
        for (n, p) in [(a, pa), (b, pb)] {
            if self.wiring.at(n, p).is_some() {
                return Err(DumbNetError::PortInUse(format!("{n}:{p}")));
            }
        }
        let id = WireId(self.wiring.wires.len());
        self.wiring.wires.push(Wire {
            a: (a, pa),
            b: (b, pb),
            params,
            up: true,
            busy: [SimTime::ZERO; 2],
        });
        self.faults.push(None);
        let fault_seed = self.core.fault_seed;
        self.core
            .fault_rngs
            .push(Self::wire_fault_rngs(fault_seed, id));
        let counters = LinkCounters::registered(&self.core.telemetry, id);
        self.core.link_stats.push(counters);
        self.core.ext_congestion.push([false, false]);
        self.wiring.map_port(a, pa, id);
        self.wiring.map_port(b, pb, id);
        Ok(id)
    }

    /// Externally asserts or clears congestion on one direction of a
    /// wire (direction 0 is a→b, 1 is b→a). While asserted, every
    /// packet entering that direction is ECN-marked regardless of queue
    /// depth — the hybrid engine's handle for making flow-plane
    /// (elephant) congestion visible to packet-plane endpoints.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID or direction.
    pub fn set_external_congestion(&mut self, wire: WireId, dir: usize, congested: bool) {
        assert!(dir < 2, "wire direction must be 0 (a→b) or 1 (b→a)");
        self.core.ext_congestion[wire.0][dir] = congested;
    }

    /// The fault-stream pair for one wire: direction 0 (a→b) and 1.
    fn wire_fault_rngs(fault_seed: u64, wire: WireId) -> [StdRng; 2] {
        [
            StdRng::seed_from_u64(derive_seed(fault_seed, (wire.0 as u64) * 2 + 1)),
            StdRng::seed_from_u64(derive_seed(fault_seed, (wire.0 as u64) * 2 + 2)),
        ]
    }

    /// Physical parameters of a wire (the sharded engine reads link
    /// latencies from here to compute its lookahead bound).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID.
    #[must_use]
    pub fn wire_params(&self, wire: WireId) -> LinkParams {
        self.wiring.wires[wire.0].params
    }

    /// Number of wires.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.wiring.wires.len()
    }

    /// The two `(node, port)` endpoints of a wire.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID.
    #[must_use]
    pub fn wire_endpoints(&self, wire: WireId) -> ((NodeAddr, PortNo), (NodeAddr, PortNo)) {
        let w = &self.wiring.wires[wire.0];
        (w.a, w.b)
    }

    /// Whether a wire is currently up.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID.
    #[must_use]
    pub fn wire_up(&self, wire: WireId) -> bool {
        self.wiring.wires[wire.0].up
    }

    /// Installs (or replaces) the fault profile of a wire.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID.
    pub fn set_fault_profile(&mut self, wire: WireId, profile: FaultProfile) {
        self.faults[wire.0] = if profile.is_benign() {
            None
        } else {
            Some(profile)
        };
    }

    /// Reseeds every per-(wire, direction) fault stream (normally done
    /// through [`ChaosPlan::apply`](crate::faults::ChaosPlan::apply)).
    /// Wires created later derive from the new seed too.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_seed = seed;
        for (ix, rngs) in self.core.fault_rngs.iter_mut().enumerate() {
            *rngs = Self::wire_fault_rngs(seed, WireId(ix));
        }
    }

    /// Per-wire counters accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range wire ID.
    #[must_use]
    pub fn link_stats(&self, wire: WireId) -> LinkStats {
        self.link_stats[wire.0].view()
    }

    /// Schedules `node` to crash at `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeAddr) {
        let key = self.ext_key();
        self.schedule_crash_keyed(at, node, key, true);
    }

    /// Schedules `node` to come back at `at` (no-op unless crashed).
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeAddr) {
        let key = self.ext_key();
        self.schedule_restart_keyed(at, node, key, true);
    }

    pub(crate) fn schedule_crash_keyed(
        &mut self,
        at: SimTime,
        node: NodeAddr,
        key: u64,
        counted: bool,
    ) {
        self.queue.push(at, key, Event::Crash { node, counted });
    }

    pub(crate) fn schedule_restart_keyed(
        &mut self,
        at: SimTime,
        node: NodeAddr,
        key: u64,
        counted: bool,
    ) {
        self.queue.push(at, key, Event::Restart { node, counted });
    }

    /// Whether `node` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, node: NodeAddr) -> bool {
        self.crashed.get(node.0).copied().unwrap_or(false)
    }

    /// The wire on `(node, port)`, if any.
    #[must_use]
    pub fn wire_at(&self, node: NodeAddr, port: PortNo) -> Option<WireId> {
        self.wiring.at(node, port)
    }

    /// Schedules an administrative wire state change at `at` (both
    /// endpoint nodes get carrier notifications when it happens).
    pub fn schedule_link_state(&mut self, at: SimTime, wire: WireId, up: bool) {
        let key = self.ext_key();
        self.schedule_link_state_keyed(at, wire, up, key, true);
    }

    pub(crate) fn schedule_link_state_keyed(
        &mut self,
        at: SimTime,
        wire: WireId,
        up: bool,
        key: u64,
        counted: bool,
    ) {
        self.queue
            .push(at, key, Event::AdminLink { wire, up, counted });
    }

    /// Schedules `wire`'s fault profile to be replaced at `at` —
    /// the mid-run half of [`World::set_fault_profile`], used by
    /// [`ChaosPlan`](crate::faults::ChaosPlan) profile changes so gray
    /// faults can heal or worsen while the world runs. No carrier
    /// notification: the wire stays administratively up throughout.
    pub fn schedule_fault_profile(&mut self, at: SimTime, wire: WireId, profile: FaultProfile) {
        let key = self.ext_key();
        self.schedule_fault_profile_keyed(at, wire, profile, key, true);
    }

    pub(crate) fn schedule_fault_profile_keyed(
        &mut self,
        at: SimTime,
        wire: WireId,
        profile: FaultProfile,
        key: u64,
        counted: bool,
    ) {
        self.queue.push(
            at,
            key,
            Event::AdminFault {
                wire,
                profile: Box::new(profile),
                counted,
            },
        );
    }

    /// Injects a packet arrival at `(node, port)` at time `at`, as if it
    /// had come off a wire.
    pub fn inject(&mut self, at: SimTime, node: NodeAddr, port: PortNo, pkt: Packet) {
        let key = self.ext_key();
        self.inject_keyed(at, node, port, pkt, key);
    }

    pub(crate) fn inject_keyed(
        &mut self,
        at: SimTime,
        node: NodeAddr,
        port: PortNo,
        pkt: Packet,
        key: u64,
    ) {
        self.queue.push(
            at,
            key,
            Event::Arrive {
                node,
                port,
                pkt,
                via: None,
            },
        );
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters (a view assembled from the telemetry handles).
    #[must_use]
    pub fn stats(&self) -> WorldStats {
        self.stats.view()
    }

    /// Immutable downcast access to a node's concrete type.
    #[must_use]
    pub fn node<T: 'static>(&self, addr: NodeAddr) -> Option<&T> {
        self.nodes
            .get(addr.0)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable downcast access to a node's concrete type.
    #[must_use]
    pub fn node_mut<T: 'static>(&mut self, addr: NodeAddr) -> Option<&mut T> {
        self.nodes
            .get_mut(addr.0)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs until the event queue drains or `max_events` fire, whichever
    /// comes first. Returns the stats snapshot.
    pub fn run_to_idle(&mut self, max_events: u64) -> WorldStats {
        self.ensure_started();
        let mut fired = 0;
        while fired < max_events {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
            fired += 1;
        }
        self.stats.view()
    }

    /// Runs all events with timestamps ≤ `until`, then sets the clock to
    /// `until`.
    pub fn run_until(&mut self, until: SimTime) -> WorldStats {
        self.ensure_started();
        while let Some((t, ev)) = self.queue.pop_before(until) {
            self.now = t;
            self.dispatch(ev);
        }
        self.now = until;
        self.stats.view()
    }

    /// Timestamp of the next pending event.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs every local event with a timestamp strictly before `end`
    /// (one synchronization window) and returns how many fired. Events
    /// at `end` or later stay queued: a cross-shard arrival generated
    /// elsewhere during this window can land at `end` at the earliest,
    /// and it must be merged (by key) before anything at that instant
    /// runs.
    pub(crate) fn run_window(&mut self, end: SimTime) -> u64 {
        self.ensure_started();
        let mut fired = 0;
        while let Some((t, ev)) = self.queue.pop_strictly_before(end) {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
            fired += 1;
        }
        fired
    }

    /// Pops and dispatches the single earliest event, returning its
    /// time, or `None` when idle. The zero-lookahead fallback uses this
    /// to run an exact global `(time, key)` merge across shards, one
    /// event at a time.
    pub(crate) fn dispatch_head(&mut self) -> Option<SimTime> {
        self.ensure_started();
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.dispatch(ev);
        Some(t)
    }

    /// `(time, key)` of this shard's earliest pending event.
    pub(crate) fn peek_head(&self) -> Option<(SimTime, u64)> {
        self.queue.peek_head()
    }

    /// Advances the clock to `t` (never backwards); called at window
    /// barriers so every shard agrees on "now" between windows.
    pub(crate) fn set_clock(&mut self, t: SimTime) {
        if t > self.core.now {
            self.core.now = t;
        }
    }

    /// Drains the cross-shard arrivals generated since the last call.
    pub(crate) fn take_outbox(&mut self) -> Vec<Crossing> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Earliest buffered cross-shard arrival, if any.
    pub(crate) fn outbox_earliest(&self) -> Option<SimTime> {
        self.core.outbox.iter().map(|c| c.at).min()
    }

    /// Enqueues an arrival received from another shard, preserving the
    /// key its sender assigned.
    pub(crate) fn push_crossing(&mut self, c: Crossing) {
        self.core.queue.push(
            c.at,
            c.key,
            Event::Arrive {
                node: c.node,
                port: c.port,
                pkt: c.pkt,
                via: Some(c.via),
            },
        );
    }

    /// Allocates the next external (origin-0) ordering key. The sharded
    /// driver allocates external keys itself so mirrored copies of one
    /// admin event share a key across shards.
    pub(crate) fn alloc_ext_key(&mut self) -> u64 {
        self.core.ext_key()
    }

    pub(crate) fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for ix in 0..self.nodes.len() {
                // Only locally-owned nodes start here; in a sharded run
                // each node's Start fires on exactly one shard. The key
                // is the node's first emission either way, so the
                // single-shard order (ascending address) is preserved.
                if self.nodes[ix].is_none() {
                    continue;
                }
                let at = self.core.now;
                let key = self.core.next_key(NodeAddr(ix));
                self.core.queue.push(at, key, Event::Start(NodeAddr(ix)));
            }
        }
    }

    fn dispatch(&mut self, ev: Event) {
        if ev.counted() {
            self.stats.events.inc();
        }
        match ev {
            Event::Start(addr) => {
                self.with_node(addr, |node, ctx| node.on_start(ctx));
            }
            Event::Arrive {
                node,
                port,
                pkt,
                via,
            } => {
                if self.crashed.get(node.0).copied().unwrap_or(false) {
                    self.stats.drops_crashed.inc();
                    if let Some(w) = via {
                        self.link_stats[w.0].drops_crashed.inc();
                    }
                    return;
                }
                self.stats.packets_delivered.inc();
                if let Some(w) = via {
                    self.link_stats[w.0].delivered.inc();
                }
                self.with_node(node, |n, ctx| n.on_packet(ctx, port, pkt));
            }
            Event::Egress { node, port, pkt } => {
                if self.crashed.get(node.0).copied().unwrap_or(false) {
                    self.stats.drops_crashed.inc();
                    return;
                }
                self.transmit(node, port, pkt);
            }
            Event::Timer { node, token, epoch } => {
                // Timers are volatile: a crash bumps the node's epoch,
                // so anything armed before the crash is stale and must
                // not fire — not while dead, and not after restart.
                if self.epoch.get(node.0).copied().unwrap_or(0) != epoch {
                    return;
                }
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            Event::AdminLink { wire, up, counted } => {
                let (a, b, changed) = {
                    let w = &mut self.wiring.wires[wire.0];
                    let changed = w.up != up;
                    w.up = up;
                    (w.a, w.b, changed)
                };
                if changed {
                    if counted && self.telemetry.trace_enabled() {
                        self.telemetry.emit(
                            self.now,
                            TraceCategory::Chaos,
                            NodeKind::Link,
                            wire.0 as u64,
                            format!("admin link {}", if up { "up" } else { "down" }),
                        );
                    }
                    self.with_node(a.0, |n, ctx| n.on_link_change(ctx, a.1, up));
                    self.with_node(b.0, |n, ctx| n.on_link_change(ctx, b.1, up));
                }
            }
            Event::AdminFault {
                wire,
                profile,
                counted,
            } => {
                if counted && self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Chaos,
                        NodeKind::Link,
                        wire.0 as u64,
                        format!(
                            "fault profile {}",
                            if profile.is_benign() {
                                "cleared"
                            } else {
                                "replaced"
                            }
                        ),
                    );
                }
                self.set_fault_profile(wire, *profile);
            }
            Event::Crash {
                node: addr,
                counted,
            } => {
                if self.crashed.get(addr.0).copied().unwrap_or(true) {
                    return;
                }
                self.crashed[addr.0] = true;
                self.epoch[addr.0] = self.epoch[addr.0].wrapping_add(1);
                if counted && self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Chaos,
                        NodeKind::World,
                        addr.0 as u64,
                        format!("node {addr} crashed"),
                    );
                }
                self.set_incident_wires(addr, false);
            }
            Event::Restart {
                node: addr,
                counted,
            } => {
                if !self.crashed.get(addr.0).copied().unwrap_or(false) {
                    return;
                }
                self.crashed[addr.0] = false;
                if counted && self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Chaos,
                        NodeKind::World,
                        addr.0 as u64,
                        format!("node {addr} restarted"),
                    );
                }
                self.set_incident_wires(addr, true);
                self.with_node(addr, |n, ctx| n.on_restart(ctx));
            }
        }
    }

    /// Forces every wire touching `addr` to `up`, notifying the nodes
    /// whose carrier actually changed (the crashed endpoint itself is
    /// deaf and skipped by `with_node`).
    ///
    /// Restart brings *all* incident wires back up; a concurrent
    /// administrative down (flap schedule) overlapping a crash window is
    /// resolved in favour of the restart.
    fn set_incident_wires(&mut self, addr: NodeAddr, up: bool) {
        let mut notify = Vec::new();
        for w in &mut self.wiring.wires {
            if w.a.0 != addr && w.b.0 != addr {
                continue;
            }
            if w.up != up {
                w.up = up;
                notify.push(w.a);
                notify.push(w.b);
            }
        }
        for (node, port) in notify {
            self.with_node(node, |n, ctx| n.on_link_change(ctx, port, up));
        }
    }

    fn with_node<F: FnOnce(&mut Box<dyn Node>, &mut Ctx<'_>)>(&mut self, addr: NodeAddr, f: F) {
        if self.core.crashed.get(addr.0).copied().unwrap_or(false) {
            return;
        }
        let Some(slot) = self.nodes.get_mut(addr.0) else {
            return;
        };
        let Some(mut node) = slot.take() else {
            return;
        };
        // With the node out of the table, the context can borrow the
        // whole core: handler side effects apply immediately, in emit
        // order — the same order the old action buffer replayed them in.
        let mut ctx = Ctx {
            now: self.core.now,
            addr,
            epoch: self.core.epoch.get(addr.0).copied().unwrap_or(0),
            core: &mut self.core,
        };
        f(&mut node, &mut ctx);
        self.nodes[addr.0] = Some(node);
    }
}

impl Core {
    /// Ordering key for the next event caused by node `origin`:
    /// `(origin + 1) << 32 | seq`. Content-based, so it is identical at
    /// any shard count.
    fn next_key(&mut self, origin: NodeAddr) -> u64 {
        let seq = self.emit_seq[origin.0];
        self.emit_seq[origin.0] = seq
            .checked_add(1)
            .expect("per-node emission counter overflow");
        ((origin.0 as u64 + 1) << 32) | u64::from(seq)
    }

    /// Ordering key for the next externally scheduled event (origin 0):
    /// sorts before every node-caused event at the same instant, like
    /// the pre-scheduled externals always did.
    fn ext_key(&mut self) -> u64 {
        let seq = self.ext_seq;
        self.ext_seq = seq.checked_add(1).expect("external event counter overflow");
        u64::from(seq)
    }

    /// Puts a packet onto the wire at `(from, port)` at the current time.
    fn transmit(&mut self, from: NodeAddr, port: PortNo, mut pkt: Packet) {
        let Some(wid) = self.wiring.at(from, port) else {
            self.stats.drops_down.inc();
            return;
        };
        let wire = &mut self.wiring.wires[wid.0];
        if !wire.up {
            self.stats.drops_down.inc();
            self.link_stats[wid.0].drops_down.inc();
            return;
        }
        let (dir, dest) = if wire.a == (from, port) {
            (0, wire.b)
        } else {
            (1, wire.a)
        };
        let depart_start = wire.busy[dir].max(self.now);
        let queue_delay = depart_start - self.now;
        if queue_delay > wire.params.max_queue {
            self.stats.drops_queue.inc();
            self.link_stats[wid.0].drops_queue.inc();
            return;
        }
        let queue_congested = wire
            .params
            .ecn_threshold
            .is_some_and(|threshold| queue_delay > threshold);
        if queue_congested || self.ext_congestion[wid.0][dir] {
            pkt.ecn = true;
            self.stats.ecn_marked.inc();
            self.link_stats[wid.0].ecn_marked.inc();
        }
        let ser = wire.params.bandwidth.serialization_delay(pkt.wire_len());
        let departed = depart_start + ser;
        wire.busy[dir] = departed;
        let mut arrival = departed + wire.params.latency;
        // The wire accepted the packet: bandwidth is consumed even when
        // an injected fault then eats the bits mid-flight.
        //
        // Fault-induced drops below also leave a packet-category trace:
        // they are the data-plane evidence a chaos diagnosis needs.
        // Congestion drops (queue/down) are counters only — during a
        // partition they arrive in storms that would evict every useful
        // event from the bounded ring.
        self.stats.packets_sent.inc();
        self.link_stats[wid.0].sent.inc();
        if let Some(profile) = &self.faults[wid.0] {
            // Evaluated against departure time: the instant the bits
            // actually hit the wire. Coin flips draw from this wire
            // direction's own stream, so the outcome for the n-th
            // packet down this direction is the same at any shard
            // count.
            let fault_rng = &mut self.fault_rngs[wid.0][dir];
            if profile.in_burst(departed) {
                self.stats.drops_loss.inc();
                self.link_stats[wid.0].drops_burst.inc();
                if self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Packet,
                        NodeKind::Link,
                        wid.0 as u64,
                        "burst-window drop",
                    );
                }
                return;
            }
            let p_loss = profile.loss_at(departed, dir);
            if p_loss > 0.0 && fault_rng.gen_bool(p_loss) {
                self.stats.drops_loss.inc();
                self.link_stats[wid.0].drops_loss.inc();
                if self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Packet,
                        NodeKind::Link,
                        wid.0 as u64,
                        "loss drop",
                    );
                }
                return;
            }
            let p_corrupt = profile.corrupt_at(departed);
            if p_corrupt > 0.0 && fault_rng.gen_bool(p_corrupt) {
                self.stats.drops_corrupt.inc();
                self.link_stats[wid.0].drops_corrupt.inc();
                if self.telemetry.trace_enabled() {
                    self.telemetry.emit(
                        self.now,
                        TraceCategory::Packet,
                        NodeKind::Link,
                        wid.0 as u64,
                        "corruption drop",
                    );
                }
                return;
            }
            if profile.jitter > SimDuration::ZERO {
                let extra = fault_rng.gen_range(0..=profile.jitter.nanos());
                if extra > 0 {
                    arrival = arrival + SimDuration::from_nanos(extra);
                    self.link_stats[wid.0].jittered.inc();
                }
            }
        }
        let key = self.next_key(from);
        if self.sharded && self.cells[dest.0 .0] != self.my_cell {
            // Destination lives on another shard: buffer the arrival
            // for the window-barrier exchange. The key travels with it,
            // so the receiving shard merges it into exactly the slot a
            // single-world run would have used.
            self.outbox.push(Crossing {
                at: arrival,
                key,
                node: dest.0,
                port: dest.1,
                pkt,
                via: wid,
            });
            return;
        }
        self.queue.push(
            arrival,
            key,
            Event::Arrive {
                node: dest.0,
                port: dest.1,
                pkt,
                via: Some(wid),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_packet::Payload;
    use dumbnet_types::{MacAddr, Path};

    /// Test node: counts arrivals; optionally echoes every packet back
    /// out the port it came in on.
    struct Echo {
        echo: bool,
        received: Vec<(SimTime, u64)>,
    }

    impl Echo {
        fn new(echo: bool) -> Echo {
            Echo {
                echo,
                received: Vec::new(),
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet) {
            if let Payload::Data { seq, .. } = pkt.payload {
                self.received.push((ctx.now(), seq));
            }
            if self.echo {
                ctx.send(in_port, pkt);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn data(seq: u64, bytes: usize) -> Packet {
        Packet::data(
            MacAddr::for_host(1),
            MacAddr::for_host(0),
            Path::empty(),
            0,
            seq,
            bytes,
        )
    }

    const P1: PortNo = match PortNo::new(1) {
        Some(p) => p,
        None => unreachable!(),
    };

    #[test]
    fn packet_takes_latency_plus_serialization() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(false)));
        let b = w.add_node(Box::new(Echo::new(false)));
        let params = LinkParams {
            latency: SimDuration::from_micros(5),
            bandwidth: Bandwidth::gbps(1),
            max_queue: SimDuration::from_millis(1),
            ecn_threshold: None,
        };
        w.wire(a, P1, b, P1, params).unwrap();
        let pkt = data(0, 100);
        let wire_len = pkt.wire_len();
        w.inject(SimTime::ZERO, a, P1, pkt);
        w.run_to_idle(100);
        // a echoes nothing; but we injected *at* a. Re-inject towards b:
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(false)));
        let b = w.add_node(Box::new(Echo::new(true)));
        w.wire(a, P1, b, P1, params).unwrap();
        // Make a send by injecting into an echoing node b? Instead use a
        // node that echoes: inject at b, it echoes to a.
        w.inject(SimTime::ZERO, b, P1, data(7, 100));
        w.run_to_idle(100);
        let recv = &w.node::<Echo>(a).unwrap().received;
        assert_eq!(recv.len(), 1);
        let expect = SimDuration::from_micros(5) + Bandwidth::gbps(1).serialization_delay(wire_len);
        assert_eq!(recv[0].0, SimTime::ZERO + expect);
        assert_eq!(recv[0].1, 7);
    }

    #[test]
    fn serialization_queues_back_to_back_sends() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(true)));
        let sink = w.add_node(Box::new(Echo::new(false)));
        let params = LinkParams {
            latency: SimDuration::ZERO,
            bandwidth: Bandwidth::mbps(8), // 1 byte/µs.
            max_queue: SimDuration::from_secs(1),
            ecn_threshold: None,
        };
        w.wire(a, P1, sink, P1, params).unwrap();
        // Two packets arrive at a at t=0 and echo to sink; the second
        // must wait for the first's serialization.
        w.inject(SimTime::ZERO, a, P1, data(1, 100));
        w.inject(SimTime::ZERO, a, P1, data(2, 100));
        w.run_to_idle(100);
        let recv = &w.node::<Echo>(sink).unwrap().received;
        assert_eq!(recv.len(), 2);
        let ser = params
            .bandwidth
            .serialization_delay(data(1, 100).wire_len());
        assert_eq!(recv[0].0, SimTime::ZERO + ser);
        assert_eq!(recv[1].0, SimTime::ZERO + ser + ser);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(true)));
        let sink = w.add_node(Box::new(Echo::new(false)));
        let params = LinkParams {
            latency: SimDuration::ZERO,
            bandwidth: Bandwidth::mbps(8),
            max_queue: SimDuration::from_micros(100), // Fits <1 extra pkt.
            ecn_threshold: None,
        };
        w.wire(a, P1, sink, P1, params).unwrap();
        for i in 0..10 {
            w.inject(SimTime::ZERO, a, P1, data(i, 100));
        }
        w.run_to_idle(1000);
        let recv = &w.node::<Echo>(sink).unwrap().received;
        assert!(
            recv.len() < 10,
            "expected drops, all {} arrived",
            recv.len()
        );
        assert!(w.stats().drops_queue > 0);
    }

    #[test]
    fn down_wire_drops_and_notifies() {
        struct Watch {
            changes: Vec<(SimTime, bool)>,
        }
        impl Node for Watch {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortNo, _: Packet) {}
            fn on_link_change(&mut self, ctx: &mut Ctx<'_>, _p: PortNo, up: bool) {
                self.changes.push((ctx.now(), up));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(true)));
        let b = w.add_node(Box::new(Watch { changes: vec![] }));
        let wid = w.wire(a, P1, b, P1, LinkParams::ten_gig()).unwrap();
        let t_fail = SimTime::ZERO + SimDuration::from_millis(1);
        w.schedule_link_state(t_fail, wid, false);
        // Packet sent after failure must be dropped.
        w.inject(t_fail + SimDuration::from_millis(1), a, P1, data(0, 50));
        w.run_to_idle(100);
        assert_eq!(w.stats().drops_down, 1);
        let watch = w.node::<Watch>(b).unwrap();
        assert_eq!(watch.changes, vec![(t_fail, false)]);
    }

    #[test]
    fn scheduled_fault_profile_change_heals_wire() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(true)));
        let sink = w.add_node(Box::new(Echo::new(false)));
        let wid = w.wire(a, P1, sink, P1, LinkParams::ten_gig()).unwrap();
        w.set_fault_profile(wid, FaultProfile::lossy(1.0));
        let heal = SimTime::ZERO + SimDuration::from_millis(1);
        w.schedule_fault_profile(heal, wid, FaultProfile::default());
        // Echoed onto the wire pre-heal: eaten. Post-heal: delivered.
        w.inject(SimTime::ZERO, a, P1, data(1, 100));
        w.inject(heal + SimDuration::from_millis(1), a, P1, data(2, 100));
        w.run_to_idle(100);
        let recv = &w.node::<Echo>(sink).unwrap().received;
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0].1, 2);
        assert_eq!(w.stats().drops_loss, 1);
    }

    #[test]
    fn directional_loss_spares_reverse_direction() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(true)));
        let b = w.add_node(Box::new(Echo::new(true)));
        let wid = w.wire(a, P1, b, P1, LinkParams::ten_gig()).unwrap();
        // Direction 0 is a→b in wire-endpoint order; kill it entirely.
        w.set_fault_profile(wid, FaultProfile::lossy_dir(0, 1.0));
        // b echoes toward a (direction 1, clean); a's echo back dies.
        // b's count of 1 is the injected packet itself.
        w.inject(SimTime::ZERO, b, P1, data(9, 100));
        w.run_to_idle(100);
        assert_eq!(w.node::<Echo>(a).unwrap().received.len(), 1);
        assert_eq!(w.node::<Echo>(b).unwrap().received.len(), 1);
        assert_eq!(w.stats().drops_loss, 1);
    }

    #[test]
    fn double_wire_rejected() {
        let mut w = World::new(0);
        let a = w.add_node(Box::new(Echo::new(false)));
        let b = w.add_node(Box::new(Echo::new(false)));
        let c = w.add_node(Box::new(Echo::new(false)));
        w.wire(a, P1, b, P1, LinkParams::ten_gig()).unwrap();
        assert!(w.wire(a, P1, c, P1, LinkParams::ten_gig()).is_err());
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<(SimTime, u64)>,
        }
        impl Node for Timed {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_micros(30), 3);
                ctx.set_timer(SimDuration::from_micros(10), 1);
                ctx.set_timer(SimDuration::from_micros(20), 2);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortNo, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push((ctx.now(), token));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(0);
        let t = w.add_node(Box::new(Timed { fired: vec![] }));
        w.run_to_idle(100);
        let fired: Vec<u64> = w
            .node::<Timed>(t)
            .unwrap()
            .fired
            .iter()
            .map(|x| x.1)
            .collect();
        assert_eq!(fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut w = World::new(0);
        let _ = w.add_node(Box::new(Echo::new(false)));
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        w.run_until(t);
        assert_eq!(w.now(), t);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = World::new(42);
            let a = w.add_node(Box::new(Echo::new(true)));
            let b = w.add_node(Box::new(Echo::new(true)));
            let params = LinkParams {
                latency: SimDuration::from_micros(1),
                bandwidth: Bandwidth::gbps(1),
                max_queue: SimDuration::from_micros(3),
                ecn_threshold: None,
            };
            w.wire(a, P1, b, P1, params).unwrap();
            // Echo storm with queue drops: sensitive to ordering.
            for i in 0..5 {
                w.inject(SimTime::ZERO, a, P1, data(i, 500));
            }
            w.run_to_idle(10_000);
            (w.stats(), w.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wired_ports_and_link_up_visible_to_node() {
        struct Introspect {
            seen: Vec<PortNo>,
            up: bool,
        }
        impl Node for Introspect {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.seen = ctx.wired_ports();
                self.up = ctx.link_up(P1);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortNo, _: Packet) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(0);
        let i = w.add_node(Box::new(Introspect {
            seen: vec![],
            up: false,
        }));
        let peer = w.add_node(Box::new(Echo::new(false)));
        let p3 = PortNo::new(3).unwrap();
        w.wire(i, P1, peer, P1, LinkParams::ten_gig()).unwrap();
        w.wire(i, p3, peer, p3, LinkParams::ten_gig()).unwrap();
        w.run_to_idle(10);
        let node = w.node::<Introspect>(i).unwrap();
        assert_eq!(node.seen, vec![P1, p3]);
        assert!(node.up);
    }
}
