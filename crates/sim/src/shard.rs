//! Sharded multi-core execution: conservative-lookahead PDES on top of
//! per-cell [`World`] instances.
//!
//! # Model
//!
//! A [`ShardedWorld`] partitions the node set into `cells` (typically
//! one fat-tree pod per cell; see `dumbnet-topology`'s `partition`
//! module) and runs one [`World`] per cell. Every shard holds the
//! complete wiring table and node *slot* table, but only its own cell's
//! node objects — foreign slots are `None`, so dispatching to them is a
//! no-op. A packet whose destination lives on another shard detours
//! through the sending shard's outbox and is merged into the owner's
//! queue at the next synchronization barrier.
//!
//! # Conservative time windows
//!
//! Shards synchronize with the classic null-message/lookahead recipe:
//! with `L` = the minimum latency over all inter-cell wires, a packet
//! sent at time `t` cannot arrive on another shard before `t + L`
//! (arrival = departure + serialization + latency ≥ send + L). So if
//! the earliest pending event anywhere is at `m`, every shard can run
//! `[m, m + L)` without receiving anything new from its peers. The
//! window loop is:
//!
//! 1. route buffered crossings to their owner shards,
//! 2. `m` ← min pending event time across shards and crossings,
//! 3. every shard runs events with `t < min(m + L, horizon)` —
//!    concurrently when worker threads are available,
//! 4. repeat until idle or the horizon.
//!
//! Cross-shard arrivals always land at or after the current window end,
//! so the barrier in step 1 never misses a merge. When `L` would be
//! zero (a zero-latency inter-cell wire), the engine falls back to an
//! exact global `(time, key)` lockstep merge: one event at a time,
//! always the globally smallest, with crossings exchanged after every
//! dispatch. Slow, but exactly equivalent — the lookahead floor never
//! compromises correctness.
//!
//! # Determinism
//!
//! Identical results at any shard count follow from three invariants of
//! the underlying engine (see `engine`'s module docs):
//!
//! * event ordering keys are content-based (origin node + per-origin
//!   sequence number), so merged queues pop in the same order a single
//!   world would;
//! * application randomness is per-node and fault randomness is
//!   per-(wire, direction), each stream consumed by exactly one shard;
//! * admin events (crash, restart, link flips, fault-profile changes)
//!   are mirrored into every shard under one shared key, with exactly
//!   one copy marked `counted`, so wire state stays consistent
//!   everywhere while merged counters match the single-world run.
//!
//! The [`Engine`] trait abstracts over [`World`] and [`ShardedWorld`]
//! so fabrics, chaos plans and invariant checkers drive either engine
//! unchanged; `shards = 1` is the degenerate case and behaves
//! event-for-event like the legacy single world.

use std::sync::mpsc;

use dumbnet_packet::Packet;
use dumbnet_telemetry::{TelemetrySnapshot, TraceEvent};
use dumbnet_types::{PortNo, Result, SimDuration, SimTime};

use crate::engine::{Crossing, LinkParams, LinkStats, Node, NodeAddr, WireId, World, WorldStats};
use crate::faults::FaultProfile;

/// Common driving surface of [`World`] and [`ShardedWorld`].
///
/// Everything the fabric builder, chaos harness and invariant checkers
/// need: construction (nodes, wires), scheduling (injections, admin
/// events), execution (windows of virtual time) and observation
/// (stats, telemetry, traces). Code written against `Engine` runs
/// unmodified on one core or many.
pub trait Engine {
    /// Adds a node to the default cell and returns its address.
    fn add_node(&mut self, node: Box<dyn Node>) -> NodeAddr;

    /// Adds a node assigned to `cell` and returns its address.
    ///
    /// On a plain [`World`] the cell is recorded but has no execution
    /// effect; on a [`ShardedWorld`] it selects the owning shard, with
    /// cells beyond the shard count wrapping round-robin onto shards
    /// (`cell % shards`) so a topology partitioned into more cells than
    /// the machine has cores still maps deterministically.
    fn add_node_in_cell(&mut self, node: Box<dyn Node>, cell: u32) -> NodeAddr;

    /// Wires `a:pa` to `b:pb`.
    ///
    /// # Errors
    ///
    /// Fails when a port is already wired or an address is unknown.
    fn wire(
        &mut self,
        a: NodeAddr,
        pa: PortNo,
        b: NodeAddr,
        pb: PortNo,
        params: LinkParams,
    ) -> Result<WireId>;

    /// Immutable downcast access to a node's concrete type.
    fn node<T: 'static>(&self, addr: NodeAddr) -> Option<&T>;

    /// Mutable downcast access to a node's concrete type.
    fn node_mut<T: 'static>(&mut self, addr: NodeAddr) -> Option<&mut T>;

    /// Number of node slots.
    fn node_count(&self) -> usize;

    /// The cell a node was assigned to.
    fn node_cell(&self, addr: NodeAddr) -> u32;

    /// Number of cells this engine executes (1 for a plain world).
    fn cell_count(&self) -> usize;

    /// Number of wires.
    fn wire_count(&self) -> usize;

    /// The wire on `(node, port)`, if any.
    fn wire_at(&self, node: NodeAddr, port: PortNo) -> Option<WireId>;

    /// The two `(node, port)` endpoints of a wire.
    fn wire_endpoints(&self, wire: WireId) -> ((NodeAddr, PortNo), (NodeAddr, PortNo));

    /// Whether a wire is administratively up.
    fn wire_up(&self, wire: WireId) -> bool;

    /// Physical parameters of a wire.
    fn wire_params(&self, wire: WireId) -> LinkParams;

    /// Accumulated per-wire counters.
    fn link_stats(&self, wire: WireId) -> LinkStats;

    /// Whether `node` is currently crashed.
    fn is_crashed(&self, node: NodeAddr) -> bool;

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Accumulated engine counters.
    fn stats(&self) -> WorldStats;

    /// Timestamp of the earliest pending event, if any.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Runs all events with timestamps ≤ `until`, then sets the clock
    /// to `until`.
    fn run_until(&mut self, until: SimTime) -> WorldStats;

    /// Runs until idle or roughly `max_events` dispatches.
    ///
    /// A sharded engine stops at the first synchronization barrier at
    /// or past the budget, so it can overshoot a finite `max_events` by
    /// up to one window; `u64::MAX` (run to completion) is exact on
    /// every engine.
    fn run_to_idle(&mut self, max_events: u64) -> WorldStats;

    /// Injects a packet arrival at `(node, port)` at time `at`.
    fn inject(&mut self, at: SimTime, node: NodeAddr, port: PortNo, pkt: Packet);

    /// Schedules `node` to crash at `at`.
    fn schedule_crash(&mut self, at: SimTime, node: NodeAddr);

    /// Schedules `node` to restart at `at` (no-op unless crashed).
    fn schedule_restart(&mut self, at: SimTime, node: NodeAddr);

    /// Schedules an administrative wire state change at `at`.
    fn schedule_link_state(&mut self, at: SimTime, wire: WireId, up: bool);

    /// Schedules `wire`'s fault profile to be replaced at `at`.
    fn schedule_fault_profile(&mut self, at: SimTime, wire: WireId, profile: FaultProfile);

    /// Installs (or replaces) the fault profile of a wire immediately.
    fn set_fault_profile(&mut self, wire: WireId, profile: FaultProfile);

    /// Reseeds every per-(wire, direction) fault stream.
    fn set_fault_seed(&mut self, seed: u64);

    /// Deterministic snapshot of every registered metric, after a
    /// publish pass over all nodes. On a sharded engine the per-shard
    /// registries are merged key-wise; the result is byte-identical to
    /// the single-world snapshot of the same run.
    fn telemetry_snapshot(&mut self) -> TelemetrySnapshot;

    /// The most recent `n` trace events and the count of older ones
    /// dropped from the ring. A sharded engine merges per-shard rings
    /// by timestamp; the interleaving of same-instant events across
    /// shards is diagnostic-quality only (determinism guarantees cover
    /// counters and snapshots, not trace interleavings).
    fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64);
}

impl Engine for World {
    fn add_node(&mut self, node: Box<dyn Node>) -> NodeAddr {
        World::add_node(self, node)
    }
    fn add_node_in_cell(&mut self, node: Box<dyn Node>, cell: u32) -> NodeAddr {
        World::add_node_in_cell(self, node, cell)
    }
    fn wire(
        &mut self,
        a: NodeAddr,
        pa: PortNo,
        b: NodeAddr,
        pb: PortNo,
        params: LinkParams,
    ) -> Result<WireId> {
        World::wire(self, a, pa, b, pb, params)
    }
    fn node<T: 'static>(&self, addr: NodeAddr) -> Option<&T> {
        World::node(self, addr)
    }
    fn node_mut<T: 'static>(&mut self, addr: NodeAddr) -> Option<&mut T> {
        World::node_mut(self, addr)
    }
    fn node_count(&self) -> usize {
        World::node_count(self)
    }
    fn node_cell(&self, addr: NodeAddr) -> u32 {
        World::node_cell(self, addr)
    }
    fn cell_count(&self) -> usize {
        1
    }
    fn wire_count(&self) -> usize {
        World::wire_count(self)
    }
    fn wire_at(&self, node: NodeAddr, port: PortNo) -> Option<WireId> {
        World::wire_at(self, node, port)
    }
    fn wire_endpoints(&self, wire: WireId) -> ((NodeAddr, PortNo), (NodeAddr, PortNo)) {
        World::wire_endpoints(self, wire)
    }
    fn wire_up(&self, wire: WireId) -> bool {
        World::wire_up(self, wire)
    }
    fn wire_params(&self, wire: WireId) -> LinkParams {
        World::wire_params(self, wire)
    }
    fn link_stats(&self, wire: WireId) -> LinkStats {
        World::link_stats(self, wire)
    }
    fn is_crashed(&self, node: NodeAddr) -> bool {
        World::is_crashed(self, node)
    }
    fn now(&self) -> SimTime {
        World::now(self)
    }
    fn stats(&self) -> WorldStats {
        World::stats(self)
    }
    fn next_event_time(&self) -> Option<SimTime> {
        World::next_event_time(self)
    }
    fn run_until(&mut self, until: SimTime) -> WorldStats {
        World::run_until(self, until)
    }
    fn run_to_idle(&mut self, max_events: u64) -> WorldStats {
        World::run_to_idle(self, max_events)
    }
    fn inject(&mut self, at: SimTime, node: NodeAddr, port: PortNo, pkt: Packet) {
        World::inject(self, at, node, port, pkt);
    }
    fn schedule_crash(&mut self, at: SimTime, node: NodeAddr) {
        World::schedule_crash(self, at, node);
    }
    fn schedule_restart(&mut self, at: SimTime, node: NodeAddr) {
        World::schedule_restart(self, at, node);
    }
    fn schedule_link_state(&mut self, at: SimTime, wire: WireId, up: bool) {
        World::schedule_link_state(self, at, wire, up);
    }
    fn schedule_fault_profile(&mut self, at: SimTime, wire: WireId, profile: FaultProfile) {
        World::schedule_fault_profile(self, at, wire, profile);
    }
    fn set_fault_profile(&mut self, wire: WireId, profile: FaultProfile) {
        World::set_fault_profile(self, wire, profile);
    }
    fn set_fault_seed(&mut self, seed: u64) {
        World::set_fault_seed(self, seed);
    }
    fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        World::telemetry_snapshot(self)
    }
    fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64) {
        self.telemetry().trace_tail(n)
    }
}

/// A world partitioned into cells, one [`World`] shard per cell,
/// synchronized with conservative time windows.
///
/// Construction mirrors [`World`]: add nodes (with explicit cells),
/// wire them, schedule work, run. Results — stats, link counters,
/// telemetry snapshots, node state — are byte-identical to a
/// single-world run of the same scenario at any shard count.
pub struct ShardedWorld {
    shards: Vec<World>,
    /// Minimum latency over inter-cell wires (the PDES lookahead);
    /// `None` until a cross-cell wire exists (independent shards).
    lookahead: Option<SimDuration>,
    /// `Some(true)` forces worker threads, `Some(false)` forces
    /// sequential windows, `None` picks by available parallelism.
    parallel: Option<bool>,
}

/// One synchronization-window command to a shard worker thread.
enum WindowCmd {
    /// Merge `crossings`, run the window ending at `end` (exclusive),
    /// reply with `(shard, fired, outbox, next peek)`.
    Run {
        crossings: Vec<Crossing>,
        end: SimTime,
    },
}

/// A worker's reply after one window.
type WindowReply = (usize, u64, Vec<Crossing>, Option<(SimTime, u64)>);

impl ShardedWorld {
    /// Creates an empty sharded world with `cells` shards (≥ 1), all
    /// deriving their randomness from one `seed` exactly as a single
    /// [`World::new`] would.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is zero.
    #[must_use]
    pub fn new(seed: u64, cells: usize) -> ShardedWorld {
        assert!(cells > 0, "a sharded world needs at least one cell");
        let cells_u32 = u32::try_from(cells).expect("cell count fits in u32");
        ShardedWorld {
            shards: (0..cells_u32)
                .map(|c| World::new_cell(seed, c, true))
                .collect(),
            lookahead: None,
            parallel: None,
        }
    }

    /// Forces (`Some(true)`) or forbids (`Some(false)`) worker-thread
    /// window execution; `None` (the default) uses threads when the
    /// host has more than one core and there is more than one shard.
    /// Threaded and sequential execution produce identical results —
    /// this only selects how windows are driven.
    pub fn set_parallel(&mut self, parallel: Option<bool>) {
        self.parallel = parallel;
    }

    /// The PDES lookahead: minimum latency over inter-cell wires, or
    /// `None` while the shards are not connected to each other.
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Read access to one shard's world (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range cell index.
    #[must_use]
    pub fn shard(&self, cell: usize) -> &World {
        &self.shards[cell]
    }

    /// Per-shard dispatched-event counts, for load-balance diagnostics
    /// (the parallel speedup bound is `total / max`).
    #[must_use]
    pub fn shard_event_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.stats().events).collect()
    }

    fn owner(&self, node: NodeAddr) -> usize {
        self.shards[0].node_cell(node) as usize
    }

    /// Routes every shard's buffered cross-shard arrivals to their
    /// owners.
    fn exchange(&mut self) {
        for ix in 0..self.shards.len() {
            let out = self.shards[ix].take_outbox();
            for c in out {
                let owner = self.owner(c.node);
                self.shards[owner].push_crossing(c);
            }
        }
    }

    /// Whether window execution should use worker threads.
    fn threaded(&self) -> bool {
        if self.shards.len() < 2 {
            return false;
        }
        self.parallel
            .unwrap_or_else(|| std::thread::available_parallelism().is_ok_and(|p| p.get() > 1))
    }

    /// Runs conservative windows until the queues drain, the event
    /// budget is spent, or (when `until` is set) no pending event is ≤
    /// `until`.
    fn run_windows(&mut self, until: Option<SimTime>, max_events: u64) {
        for s in &mut self.shards {
            s.ensure_started();
        }
        // The window for the earliest event at `m` is [m, m + L). The
        // horizon caps it at `until + 1 ns` so events exactly at
        // `until` still run (run_until is inclusive).
        let horizon = until.map(|u| u.after(SimDuration::from_nanos(1)));
        match self.lookahead {
            _ if self.shards.len() == 1 => {
                // Degenerate single shard: everything is local; drive
                // the inner world directly (event-for-event the legacy
                // engine).
                let s = &mut self.shards[0];
                match until {
                    Some(u) => {
                        s.run_until(u);
                    }
                    None => {
                        s.run_to_idle(max_events);
                    }
                }
            }
            None => {
                // No inter-cell wires: the shards are fully
                // independent, so each can run to its own horizon.
                let mut budget = max_events;
                for s in &mut self.shards {
                    match until {
                        Some(u) => {
                            s.run_until(u);
                        }
                        None => {
                            let before = s.stats().events;
                            s.run_to_idle(budget);
                            budget = budget.saturating_sub(s.stats().events - before);
                        }
                    }
                }
            }
            Some(l) if l == SimDuration::ZERO => self.run_lockstep(horizon, max_events),
            Some(l) => {
                if self.threaded() {
                    self.run_windows_threaded(l, horizon, max_events);
                } else {
                    self.run_windows_sequential(l, horizon, max_events);
                }
            }
        }
    }

    /// Sequential window loop (single-core hosts; also the reference
    /// implementation the threaded loop mirrors).
    fn run_windows_sequential(
        &mut self,
        lookahead: SimDuration,
        horizon: Option<SimTime>,
        max_events: u64,
    ) {
        let mut fired_total = 0u64;
        loop {
            self.exchange();
            let Some((m, _)) = self.shards.iter().filter_map(World::peek_head).min() else {
                break;
            };
            if horizon.is_some_and(|h| m >= h) || fired_total >= max_events {
                break;
            }
            let mut end = m.after(lookahead);
            if let Some(h) = horizon {
                end = end.min(h);
            }
            for s in &mut self.shards {
                fired_total += s.run_window(end);
            }
        }
    }

    /// Threaded window loop: one worker owns each shard for the
    /// duration of the run; the coordinator computes window bounds and
    /// routes crossings between barriers. Same window sequence — and
    /// therefore byte-identical results — as the sequential loop.
    fn run_windows_threaded(
        &mut self,
        lookahead: SimDuration,
        horizon: Option<SimTime>,
        max_events: u64,
    ) {
        // Crossings buffered from the previous window, per owner shard.
        let mut pending: Vec<Vec<Crossing>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        // Seed the initial exchange + peeks from the coordinator side.
        self.exchange();
        let mut peeks: Vec<Option<(SimTime, u64)>> =
            self.shards.iter().map(World::peek_head).collect();
        let owner_of: Vec<u32> = (0..self.shards[0].node_count())
            .map(|n| self.shards[0].node_cell(NodeAddr(n)))
            .collect();
        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = mpsc::channel::<WindowReply>();
            let mut cmd_txs = Vec::with_capacity(self.shards.len());
            for (ix, shard) in self.shards.iter_mut().enumerate() {
                let (tx, rx) = mpsc::channel::<WindowCmd>();
                cmd_txs.push(tx);
                let reply_tx = reply_tx.clone();
                scope.spawn(move || {
                    while let Ok(WindowCmd::Run { crossings, end }) = rx.recv() {
                        for c in crossings {
                            shard.push_crossing(c);
                        }
                        let fired = shard.run_window(end);
                        let out = shard.take_outbox();
                        let peek = shard.peek_head();
                        if reply_tx.send((ix, fired, out, peek)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);
            let mut fired_total = 0u64;
            loop {
                // Earliest pending work: local peeks plus undelivered
                // crossings (a crossing can precede every local event).
                let mut m = peeks.iter().flatten().map(|&(t, _)| t).min();
                for q in &pending {
                    for c in q {
                        let at = c.at;
                        m = Some(m.map_or(at, |cur: SimTime| cur.min(at)));
                    }
                }
                let Some(m) = m else { break };
                if horizon.is_some_and(|h| m >= h) || fired_total >= max_events {
                    break;
                }
                let mut end = m.after(lookahead);
                if let Some(h) = horizon {
                    end = end.min(h);
                }
                for (ix, tx) in cmd_txs.iter().enumerate() {
                    let crossings = std::mem::take(&mut pending[ix]);
                    tx.send(WindowCmd::Run { crossings, end })
                        .expect("shard worker alive");
                }
                for _ in 0..cmd_txs.len() {
                    let (ix, fired, out, peek) = reply_rx.recv().expect("shard worker reply");
                    fired_total += fired;
                    peeks[ix] = peek;
                    for c in out {
                        pending[owner_of[c.node.0] as usize].push(c);
                    }
                }
            }
            drop(cmd_txs);
        });
        // Undelivered crossings (past the horizon) go back into owner
        // queues so a later run resumes them.
        for c in pending.into_iter().flatten() {
            let owner = self.owner(c.node);
            self.shards[owner].push_crossing(c);
        }
    }

    /// Exact global `(time, key)` merge for zero lookahead: dispatch
    /// the single globally-earliest event, exchange crossings, repeat.
    /// Equivalent to a single world, one event at a time.
    fn run_lockstep(&mut self, horizon: Option<SimTime>, max_events: u64) {
        let mut fired_total = 0u64;
        loop {
            self.exchange();
            let best = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(ix, s)| s.peek_head().map(|hk| (hk, ix)))
                .min();
            let Some(((t, _), ix)) = best else { break };
            if horizon.is_some_and(|h| t >= h) || fired_total >= max_events {
                break;
            }
            self.shards[ix].dispatch_head();
            fired_total += 1;
        }
    }

    /// Sums a per-shard stats view into the merged totals.
    fn merged_stats(&self) -> WorldStats {
        let mut total = WorldStats::default();
        for s in &self.shards {
            let v = s.stats();
            total.events += v.events;
            total.packets_sent += v.packets_sent;
            total.packets_delivered += v.packets_delivered;
            total.drops_down += v.drops_down;
            total.drops_queue += v.drops_queue;
            total.drops_loss += v.drops_loss;
            total.drops_corrupt += v.drops_corrupt;
            total.drops_crashed += v.drops_crashed;
            total.ecn_marked += v.ecn_marked;
        }
        total
    }
}

impl Engine for ShardedWorld {
    fn add_node(&mut self, node: Box<dyn Node>) -> NodeAddr {
        self.add_node_in_cell(node, 0)
    }

    fn add_node_in_cell(&mut self, node: Box<dyn Node>, cell: u32) -> NodeAddr {
        let cell = cell % u32::try_from(self.shards.len()).expect("shard count fits in u32");
        let mut node = Some(node);
        let mut addr = NodeAddr(0);
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            let slot = if ix == cell as usize {
                node.take()
            } else {
                None
            };
            addr = shard.add_slot(slot, cell);
        }
        addr
    }

    fn wire(
        &mut self,
        a: NodeAddr,
        pa: PortNo,
        b: NodeAddr,
        pb: PortNo,
        params: LinkParams,
    ) -> Result<WireId> {
        let mut id = WireId::from_raw(0);
        for shard in &mut self.shards {
            id = shard.wire(a, pa, b, pb, params)?;
        }
        if self.shards[0].node_cell(a) != self.shards[0].node_cell(b) {
            self.lookahead = Some(match self.lookahead {
                Some(l) => l.min(params.latency),
                None => params.latency,
            });
        }
        Ok(id)
    }

    fn node<T: 'static>(&self, addr: NodeAddr) -> Option<&T> {
        self.shards[self.owner(addr)].node(addr)
    }

    fn node_mut<T: 'static>(&mut self, addr: NodeAddr) -> Option<&mut T> {
        let owner = self.owner(addr);
        self.shards[owner].node_mut(addr)
    }

    fn node_count(&self) -> usize {
        self.shards[0].node_count()
    }

    fn node_cell(&self, addr: NodeAddr) -> u32 {
        self.shards[0].node_cell(addr)
    }

    fn cell_count(&self) -> usize {
        self.shards.len()
    }

    fn wire_count(&self) -> usize {
        self.shards[0].wire_count()
    }

    fn wire_at(&self, node: NodeAddr, port: PortNo) -> Option<WireId> {
        self.shards[0].wire_at(node, port)
    }

    fn wire_endpoints(&self, wire: WireId) -> ((NodeAddr, PortNo), (NodeAddr, PortNo)) {
        self.shards[0].wire_endpoints(wire)
    }

    fn wire_up(&self, wire: WireId) -> bool {
        // Admin changes are mirrored everywhere, so every shard agrees.
        self.shards[0].wire_up(wire)
    }

    fn wire_params(&self, wire: WireId) -> LinkParams {
        self.shards[0].wire_params(wire)
    }

    fn link_stats(&self, wire: WireId) -> LinkStats {
        // Direction counters accrue on the sending shard, delivery
        // counters on the receiving one: the merged view is the sum.
        let mut total = LinkStats::default();
        for s in &self.shards {
            let v = s.link_stats(wire);
            total.sent += v.sent;
            total.delivered += v.delivered;
            total.drops_down += v.drops_down;
            total.drops_queue += v.drops_queue;
            total.drops_loss += v.drops_loss;
            total.drops_corrupt += v.drops_corrupt;
            total.drops_burst += v.drops_burst;
            total.drops_crashed += v.drops_crashed;
            total.ecn_marked += v.ecn_marked;
            total.jittered += v.jittered;
        }
        total
    }

    fn is_crashed(&self, node: NodeAddr) -> bool {
        self.shards[self.owner(node)].is_crashed(node)
    }

    fn now(&self) -> SimTime {
        // Between runs all shards agree; mid-construction they are all
        // at zero. Report the furthest clock.
        self.shards
            .iter()
            .map(World::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn stats(&self) -> WorldStats {
        self.merged_stats()
    }

    fn next_event_time(&self) -> Option<SimTime> {
        let local = self.shards.iter().filter_map(World::next_event_time).min();
        // Outboxes are drained at barriers, so they are empty between
        // runs; include them anyway for mid-run observers.
        let crossing = self.shards.iter().filter_map(World::outbox_earliest).min();
        match (local, crossing) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn run_until(&mut self, until: SimTime) -> WorldStats {
        self.run_windows(Some(until), u64::MAX);
        for s in &mut self.shards {
            s.set_clock(until);
        }
        self.merged_stats()
    }

    fn run_to_idle(&mut self, max_events: u64) -> WorldStats {
        self.run_windows(None, max_events);
        // Settle every clock at the global maximum so `now` agrees.
        let max_now = self
            .shards
            .iter()
            .map(World::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        for s in &mut self.shards {
            s.set_clock(max_now);
        }
        self.merged_stats()
    }

    fn inject(&mut self, at: SimTime, node: NodeAddr, port: PortNo, pkt: Packet) {
        // External keys come from shard 0's counter so the sequence —
        // and therefore the ordering key of the n-th external event —
        // matches a single-world run exactly.
        let key = self.shards[0].alloc_ext_key();
        let owner = self.owner(node);
        self.shards[owner].inject_keyed(at, node, port, pkt, key);
    }

    fn schedule_crash(&mut self, at: SimTime, node: NodeAddr) {
        let key = self.shards[0].alloc_ext_key();
        let owner = self.owner(node);
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            shard.schedule_crash_keyed(at, node, key, ix == owner);
        }
    }

    fn schedule_restart(&mut self, at: SimTime, node: NodeAddr) {
        let key = self.shards[0].alloc_ext_key();
        let owner = self.owner(node);
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            shard.schedule_restart_keyed(at, node, key, ix == owner);
        }
    }

    fn schedule_link_state(&mut self, at: SimTime, wire: WireId, up: bool) {
        let key = self.shards[0].alloc_ext_key();
        let ((a, _), _) = self.shards[0].wire_endpoints(wire);
        let owner = self.owner(a);
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            shard.schedule_link_state_keyed(at, wire, up, key, ix == owner);
        }
    }

    fn schedule_fault_profile(&mut self, at: SimTime, wire: WireId, profile: FaultProfile) {
        let key = self.shards[0].alloc_ext_key();
        let ((a, _), _) = self.shards[0].wire_endpoints(wire);
        let owner = self.owner(a);
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            shard.schedule_fault_profile_keyed(at, wire, profile.clone(), key, ix == owner);
        }
    }

    fn set_fault_profile(&mut self, wire: WireId, profile: FaultProfile) {
        for shard in &mut self.shards {
            shard.set_fault_profile(wire, profile.clone());
        }
    }

    fn set_fault_seed(&mut self, seed: u64) {
        for shard in &mut self.shards {
            shard.set_fault_seed(seed);
        }
    }

    fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        TelemetrySnapshot::merged(self.shards.iter_mut().map(World::telemetry_snapshot))
    }

    fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64) {
        let mut merged: Vec<(SimTime, usize, TraceEvent)> = Vec::new();
        let mut dropped = 0;
        for (ix, s) in self.shards.iter().enumerate() {
            let (tail, d) = s.telemetry().trace_tail(n);
            dropped += d;
            merged.extend(tail.into_iter().map(|e| (e.at, ix, e)));
        }
        merged.sort_by_key(|e| (e.0, e.1));
        if merged.len() > n {
            let cut = merged.len() - n;
            dropped += cut as u64;
            merged.drain(..cut);
        }
        (merged.into_iter().map(|(_, _, e)| e).collect(), dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    use dumbnet_packet::{Packet, Payload};
    use dumbnet_types::{Bandwidth, MacAddr, Path};

    use crate::engine::Ctx;
    use crate::faults::{BurstWindow, ChaosPlan, CrashSchedule, FaultProfile, FlapSchedule};

    const P1: PortNo = match PortNo::new(1) {
        Some(p) => p,
        None => unreachable!(),
    };

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO.after(us(n))
    }

    fn port(n: u8) -> PortNo {
        PortNo::new(n).expect("valid port")
    }

    /// Echoes every packet back out the port it came in on, recording
    /// `(seq, arrival ns)`.
    struct Hub {
        received: Vec<(u64, u64)>,
    }

    impl Node for Hub {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortNo, pkt: Packet) {
            if let Payload::Data { seq, .. } = pkt.payload {
                self.received.push((seq, ctx.now().nanos()));
            }
            ctx.send(in_port, pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Sends `total` packets on a timer, optionally jittering the
    /// interval with its per-node RNG; records echo arrivals.
    struct Pinger {
        id: u64,
        total: u64,
        jitter: bool,
        sent: u64,
        echoes: Vec<(u64, u64)>,
    }

    impl Pinger {
        fn new(id: u64, total: u64, jitter: bool) -> Pinger {
            Pinger {
                id,
                total,
                jitter,
                sent: 0,
                echoes: Vec::new(),
            }
        }
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(us(100), 0);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: PortNo, pkt: Packet) {
            if let Payload::Data { seq, .. } = pkt.payload {
                self.echoes.push((seq, ctx.now().nanos()));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent >= self.total {
                return;
            }
            let pkt = Packet::data(
                MacAddr::for_host(self.id),
                MacAddr::for_host(0),
                Path::empty(),
                self.id,
                self.sent,
                400,
            );
            self.sent += 1;
            ctx.send(P1, pkt);
            let extra = if self.jitter {
                ctx.rng().gen_range(0..40)
            } else {
                0
            };
            ctx.set_timer(us(100 + extra), 0);
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(us(100), 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// A hub in cell 0 wired to one pinger per further cell — the hub's
    /// links span every cell of the engine (3+ cells for `cells ≥ 4`).
    /// Returns `(hub, pingers, wires)`.
    fn build_star<E: Engine>(
        w: &mut E,
        cells: u32,
        latency: SimDuration,
        jitter: bool,
    ) -> (NodeAddr, Vec<NodeAddr>, Vec<WireId>) {
        let params = LinkParams {
            latency,
            bandwidth: Bandwidth::gbps(10),
            max_queue: SimDuration::from_millis(10),
            ecn_threshold: None,
        };
        let hub = w.add_node_in_cell(
            Box::new(Hub {
                received: Vec::new(),
            }),
            0,
        );
        let mut pingers = Vec::new();
        let mut wires = Vec::new();
        for c in 0..cells {
            let p = w.add_node_in_cell(Box::new(Pinger::new(u64::from(c) + 1, 40, jitter)), c);
            let hub_port = port(u8::try_from(c).expect("cell fits") + 1);
            wires.push(w.wire(p, P1, hub, hub_port, params).expect("wiring"));
            pingers.push(p);
        }
        (hub, pingers, wires)
    }

    /// Runs the star scenario under `plan` and digests every observable
    /// the determinism contract covers: merged stats, per-wire stats,
    /// node-internal state and the full telemetry snapshot JSON.
    fn fingerprint<E: Engine>(
        mut w: E,
        cells: u32,
        latency: SimDuration,
        jitter: bool,
        plan: Option<&ChaosPlan>,
        slices: bool,
    ) -> String {
        let (hub, pingers, wires) = build_star(&mut w, cells, latency, jitter);
        if let Some(plan) = plan {
            plan.apply(&mut w);
        }
        if slices {
            // Chaos-runner style: many short run_until calls, so window
            // state must survive re-entry.
            let mut now = SimTime::ZERO;
            for _ in 0..20 {
                now = now.after(SimDuration::from_millis(1));
                w.run_until(now);
            }
        } else {
            w.run_until(SimTime::ZERO.after(SimDuration::from_millis(20)));
        }
        let mut out = format!("{:?}\n", w.stats());
        for wire in wires {
            out.push_str(&format!("{:?}\n", w.link_stats(wire)));
        }
        let hub_log = &w.node::<Hub>(hub).expect("hub").received;
        out.push_str(&format!("hub {hub_log:?}\n"));
        for p in pingers {
            let p = w.node::<Pinger>(p).expect("pinger");
            out.push_str(&format!(
                "pinger {} sent {} echoes {:?}\n",
                p.id, p.sent, p.echoes
            ));
        }
        out.push_str(&w.telemetry_snapshot().to_json());
        out
    }

    /// The chaos plan used by the boundary tests: loss on one wire, a
    /// flap and a crash/restart, every admin instant landing exactly on
    /// a `latency`-multiple — i.e. on synchronization-window boundaries.
    fn boundary_plan(wires: &[WireId], victim: NodeAddr, latency_us: u64) -> ChaosPlan {
        ChaosPlan::seeded(42)
            .with_link_fault(
                wires[0],
                FaultProfile {
                    loss: 0.2,
                    bursts: vec![BurstWindow {
                        start: t_us(latency_us * 50),
                        duration: us(latency_us * 10),
                    }],
                    ..FaultProfile::default()
                },
            )
            .with_flap(FlapSchedule {
                wire: wires[1],
                first_down: t_us(latency_us * 100),
                down_for: us(latency_us * 20),
                period: us(latency_us * 60),
                cycles: 3,
            })
            .with_crash(CrashSchedule {
                node: victim,
                at: t_us(latency_us * 200),
                restart_after: Some(us(latency_us * 80)),
            })
    }

    /// Star wiring is identical on every engine, so the plan can be
    /// described against a throwaway single world.
    fn plan_for(cells: u32, latency: SimDuration, latency_us: u64) -> ChaosPlan {
        let mut probe = World::new(11);
        let (_, pingers, wires) = build_star(&mut probe, cells, latency, false);
        boundary_plan(&wires, pingers[1], latency_us)
    }

    #[test]
    fn single_shard_equals_legacy_world() {
        let single = fingerprint(World::new(11), 3, us(5), true, None, false);
        let sharded = fingerprint(ShardedWorld::new(11, 1), 3, us(5), true, None, false);
        assert_eq!(single, sharded);
    }

    #[test]
    fn shard_counts_are_observationally_identical() {
        let single = fingerprint(World::new(11), 4, us(5), true, None, false);
        for cells in [2usize, 4] {
            let mut w = ShardedWorld::new(11, cells);
            w.set_parallel(Some(false));
            let got = fingerprint(w, 4, us(5), true, None, false);
            assert_eq!(single, got, "sequential {cells}-shard run diverged");
        }
    }

    #[test]
    fn threaded_windows_match_sequential() {
        let mut seq = ShardedWorld::new(7, 4);
        seq.set_parallel(Some(false));
        let mut thr = ShardedWorld::new(7, 4);
        thr.set_parallel(Some(true));
        let a = fingerprint(seq, 4, us(5), true, None, false);
        let b = fingerprint(thr, 4, us(5), true, None, false);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_latency_cross_links_fall_back_to_lockstep() {
        let single = fingerprint(World::new(3), 3, SimDuration::ZERO, true, None, false);
        let w = ShardedWorld::new(3, 3);
        let got = fingerprint(w, 3, SimDuration::ZERO, true, None, false);
        assert_eq!(single, got);
        // And the engine really did pick the degenerate lookahead.
        let mut probe = ShardedWorld::new(3, 3);
        build_star(&mut probe, 3, SimDuration::ZERO, false);
        assert_eq!(probe.lookahead(), Some(SimDuration::ZERO));
    }

    #[test]
    fn hub_links_spanning_many_cells_stay_consistent() {
        // 6 cells: the hub's wires reach 5 foreign cells at once.
        let single = fingerprint(World::new(19), 6, us(3), true, None, false);
        let mut w = ShardedWorld::new(19, 6);
        w.set_parallel(Some(false));
        let got = fingerprint(w, 6, us(3), true, None, false);
        assert_eq!(single, got);
    }

    #[test]
    fn chaos_on_window_boundaries_is_shard_invariant() {
        let lat_us = 5;
        let plan = plan_for(4, us(lat_us), lat_us);
        let single = fingerprint(World::new(11), 4, us(lat_us), false, Some(&plan), true);
        for cells in [2usize, 4] {
            let mut w = ShardedWorld::new(11, cells);
            w.set_parallel(Some(false));
            let got = fingerprint(w, 4, us(lat_us), false, Some(&plan), true);
            assert_eq!(single, got, "chaos {cells}-shard run diverged");
        }
        // Threaded execution under chaos, too.
        let mut w = ShardedWorld::new(11, 4);
        w.set_parallel(Some(true));
        let got = fingerprint(w, 4, us(lat_us), false, Some(&plan), true);
        assert_eq!(single, got, "threaded chaos run diverged");
    }

    #[test]
    fn run_to_idle_drains_across_shards() {
        let mut w = ShardedWorld::new(5, 3);
        w.set_parallel(Some(false));
        let (hub, pingers, _) = build_star(&mut w, 3, us(5), false);
        let stats = w.run_to_idle(u64::MAX);
        assert!(stats.events > 0);
        assert_eq!(w.node::<Hub>(hub).expect("hub").received.len(), 3 * 40);
        for p in pingers {
            assert_eq!(w.node::<Pinger>(p).expect("pinger").echoes.len(), 40);
        }
        assert_eq!(w.next_event_time(), None);
    }

    #[test]
    fn independent_shards_run_without_lookahead() {
        // No cross-cell wires at all: two disjoint pinger→hub pairs in
        // separate cells. The lookahead stays `None` and each shard
        // runs to its horizon independently.
        fn pairs<E: Engine>(mut w: E) -> (String, E) {
            let params = LinkParams {
                latency: SimDuration::from_micros(2),
                bandwidth: Bandwidth::gbps(10),
                max_queue: SimDuration::from_millis(10),
                ecn_threshold: None,
            };
            let a0 = w.add_node_in_cell(Box::new(Pinger::new(1, 10, true)), 0);
            let a1 = w.add_node_in_cell(
                Box::new(Hub {
                    received: Vec::new(),
                }),
                0,
            );
            let b0 = w.add_node_in_cell(Box::new(Pinger::new(2, 10, true)), 1);
            let b1 = w.add_node_in_cell(
                Box::new(Hub {
                    received: Vec::new(),
                }),
                1,
            );
            w.wire(a0, P1, a1, P1, params).expect("wire");
            w.wire(b0, P1, b1, P1, params).expect("wire");
            w.run_until(SimTime::ZERO.after(SimDuration::from_millis(10)));
            let digest = format!(
                "{:?} {:?} {:?}",
                w.stats(),
                w.node::<Hub>(a1).expect("hub a").received,
                w.node::<Hub>(b1).expect("hub b").received,
            );
            (digest, w)
        }
        let (single, _) = pairs(World::new(9));
        let (sharded, w) = pairs(ShardedWorld::new(9, 2));
        assert_eq!(single, sharded);
        assert_eq!(
            w.lookahead(),
            None,
            "disjoint cells must not create lookahead"
        );
    }
}
