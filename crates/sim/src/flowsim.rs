//! Flow-level network simulation with incremental max-min fair sharing.
//!
//! Packet-level simulation of a multi-minute HiBench job would burn hours
//! of real time without changing the conclusion, so throughput-oriented
//! experiments use this solver instead: every active flow follows a fixed
//! path over capacitated edges, and rates are assigned by progressive
//! filling (the classic max-min fair allocation, which is also what
//! long-lived TCP flows approximate on a shared fabric).
//!
//! The engine is event-driven and externally orchestrated: callers start
//! flows, advance virtual time, observe completions, and may change edge
//! capacities mid-run (failure injection) or start dependent flows when
//! earlier ones complete (shuffle stages, flowlet re-routing).
//!
//! # Incremental re-solve
//!
//! A naive solver re-runs progressive filling over *every* flow on every
//! arrival, departure, re-route or capacity change — O(F·E) per event,
//! which dominates wall time once tens of thousands of flows are active.
//! This implementation instead maintains per-edge active-flow sets and a
//! dirty-edge set, and on each query re-solves only the **saturation
//! component** reachable from the dirty edges: the transitive closure of
//! "shares an edge with" over the flow↔edge incidence graph. Flows in
//! other components provably keep their previous max-min rates (the
//! allocation of one component never depends on another), so their stored
//! values stay exact.
//!
//! Within a component the filling itself uses a lazy min-heap keyed on
//! `(fair-share, edge index)` plus incrementally maintained unfixed
//! counts, replacing the reference solver's per-round full rescans. The
//! floating-point operations — bottleneck selection with
//! lowest-index-wins tie-breaks, freeze order, per-edge capacity
//! subtraction order — are performed in exactly the reference order, so
//! the incremental rates are **bit-identical** to a from-scratch solve,
//! not merely close. [`FlowSim::set_check_full_solve`] turns on a debug
//! mode that asserts this equivalence after every re-solve, and
//! [`FlowSim::set_force_full_solve`] pins the solver to the O(F·E)
//! reference path (the baseline for the `flowsim_incremental` perf
//! entries).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use dumbnet_types::{Bandwidth, SimDuration, SimTime};

/// Identity of a capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// Identity of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// A completion notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    /// The flow that finished.
    pub flow: FlowId,
    /// When it finished.
    pub at: SimTime,
}

/// Counters describing the solver's work since creation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Rate re-solves performed (incremental or forced-full).
    pub solves: u64,
    /// Re-solves that took the O(F·E) reference path (forced mode).
    pub full_solves: u64,
    /// Total flows whose rates were recomputed, across all solves.
    pub flows_resolved: u64,
    /// Total edge participations in re-solved components.
    pub edges_resolved: u64,
    /// Largest single saturation component (in flows) seen so far.
    pub max_component_flows: u64,
}

/// Rate an empty-path (unconstrained) flow is assigned: effectively
/// infinite, so it completes on the next advance.
const UNCONSTRAINED_BPS: f64 = f64::MAX / 4.0;

#[derive(Debug, Clone, Default)]
struct Edge {
    capacity_bps: f64,
    /// Active flows crossing this edge → path multiplicity.
    members: BTreeMap<u32, u32>,
    /// Σ rate × multiplicity over members; refreshed when the edge's
    /// component is re-solved.
    load_bps: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<EdgeId>,
    remaining_bits: f64,
    rate_bps: f64,
    started: SimTime,
    finished: Option<SimTime>,
}

/// Reusable solver scratch space (per-edge/per-flow arrays stamped with
/// a solve epoch instead of being cleared, so a small component's solve
/// touches only the component).
#[derive(Debug, Default)]
struct Scratch {
    /// Remaining capacity per edge, valid for the current component.
    rem: Vec<f64>,
    /// Unfixed path-occurrence count per edge, ditto.
    count: Vec<u32>,
    /// BFS visit stamp per edge.
    edge_seen: Vec<u64>,
    /// BFS visit stamp per flow.
    flow_seen: Vec<u64>,
    /// "Rate frozen in this solve" stamp per flow.
    flow_fixed: Vec<u64>,
    /// Per-round "already queued for re-push" stamp per edge.
    edge_touched: Vec<u64>,
    /// Current solve epoch (bumped per solve).
    epoch: u64,
    /// Current round epoch (bumped per filling round).
    round: u64,
    /// Lazy bottleneck heap: `(fair-share bits, edge index)`, min-first.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

/// The flow-level simulator.
#[derive(Debug, Default)]
pub struct FlowSim {
    edges: Vec<Edge>,
    flows: Vec<Flow>,
    /// Unfinished flows, ascending.
    active: BTreeSet<u32>,
    /// Edges whose constraint set changed since the last solve.
    dirty: BTreeSet<u32>,
    /// Edges whose load was recomputed since the last
    /// [`FlowSim::take_changed_edges`] drain.
    changed: BTreeSet<u32>,
    now: SimTime,
    force_full: bool,
    check_full: bool,
    stats: SolverStats,
    scratch: Scratch,
}

impl FlowSim {
    /// Creates an empty simulator at time zero.
    #[must_use]
    pub fn new() -> FlowSim {
        FlowSim::default()
    }

    /// Adds a capacitated edge.
    pub fn add_edge(&mut self, capacity: Bandwidth) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            capacity_bps: capacity.bits_per_sec() as f64,
            members: BTreeMap::new(),
            load_bps: 0.0,
        });
        id
    }

    /// Number of edges created so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Changes an edge's capacity (e.g. a failed link drops to zero).
    /// Takes effect immediately; active flows re-share.
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge — edges are created by this simulator,
    /// so an out-of-range ID is a caller bug.
    pub fn set_capacity(&mut self, edge: EdgeId, capacity: Bandwidth) {
        self.edges[edge.0].capacity_bps = capacity.bits_per_sec() as f64;
        self.dirty.insert(edge.0 as u32);
    }

    /// An edge's configured capacity in bits per second.
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge.
    #[must_use]
    pub fn edge_capacity_bps(&self, edge: EdgeId) -> f64 {
        self.edges[edge.0].capacity_bps
    }

    /// Pins the solver to the O(F·E) from-scratch reference path. Used
    /// as the perf baseline; rates are identical either way.
    pub fn set_force_full_solve(&mut self, on: bool) {
        self.force_full = on;
        // Conservatively invalidate everything on a mode switch.
        for e in 0..self.edges.len() {
            self.dirty.insert(e as u32);
        }
    }

    /// Debug mode: after every incremental re-solve, recompute all rates
    /// with the reference solver and assert bit-identical results.
    pub fn set_check_full_solve(&mut self, on: bool) {
        self.check_full = on;
    }

    /// Counters describing the solver's work so far.
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow of `bytes` along `path` at the current time.
    ///
    /// An empty path means both endpoints share an uncontended segment;
    /// such flows complete instantly on the next advance.
    pub fn start_flow(&mut self, path: Vec<EdgeId>, bytes: u64) -> FlowId {
        let ix = self.flows.len() as u32;
        let rate = if path.is_empty() {
            UNCONSTRAINED_BPS
        } else {
            0.0
        };
        for e in &path {
            *self.edges[e.0].members.entry(ix).or_insert(0) += 1;
            self.dirty.insert(e.0 as u32);
        }
        self.flows.push(Flow {
            path,
            remaining_bits: bytes as f64 * 8.0,
            rate_bps: rate,
            started: self.now,
            finished: None,
        });
        self.active.insert(ix);
        FlowId(ix as usize)
    }

    /// Re-routes an active flow onto a new path (flowlet switching /
    /// failover). No-op for finished flows.
    pub fn reroute(&mut self, flow: FlowId, path: Vec<EdgeId>) {
        let ix = flow.0 as u32;
        let Some(f) = self.flows.get(flow.0) else {
            return;
        };
        if f.finished.is_some() {
            return;
        }
        let old = std::mem::take(&mut self.flows[flow.0].path);
        for e in &old {
            self.edges[e.0].members.remove(&ix);
            self.dirty.insert(e.0 as u32);
        }
        for e in &path {
            *self.edges[e.0].members.entry(ix).or_insert(0) += 1;
            self.dirty.insert(e.0 as u32);
        }
        self.flows[flow.0].rate_bps = if path.is_empty() {
            UNCONSTRAINED_BPS
        } else {
            0.0
        };
        self.flows[flow.0].path = path;
    }

    /// The flow's current max-min rate.
    #[must_use]
    pub fn flow_rate(&mut self, flow: FlowId) -> Bandwidth {
        self.ensure_rates();
        Bandwidth::bps(
            self.flows
                .get(flow.0)
                .filter(|f| f.finished.is_none())
                .map_or(0.0, |f| f.rate_bps) as u64,
        )
    }

    /// When the flow finished, if it has.
    #[must_use]
    pub fn finished_at(&self, flow: FlowId) -> Option<SimTime> {
        self.flows.get(flow.0).and_then(|f| f.finished)
    }

    /// Flow completion time (duration from start to finish), if finished.
    #[must_use]
    pub fn completion_time(&self, flow: FlowId) -> Option<SimDuration> {
        let f = self.flows.get(flow.0)?;
        Some(f.finished? - f.started)
    }

    /// Number of unfinished flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Total offered load currently allocated across `edge`
    /// (Σ rate × path multiplicity over the flows crossing it), in bits
    /// per second.
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge.
    pub fn edge_load_bps(&mut self, edge: EdgeId) -> f64 {
        self.ensure_rates();
        self.edges[edge.0].load_bps
    }

    /// Fraction of `edge`'s capacity currently allocated (0 when the
    /// capacity is zero: a dead link carries nothing).
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge.
    pub fn edge_utilization(&mut self, edge: EdgeId) -> f64 {
        self.ensure_rates();
        let e = &self.edges[edge.0];
        if e.capacity_bps > 0.0 {
            e.load_bps / e.capacity_bps
        } else {
            0.0
        }
    }

    /// Drains the set of edges whose allocated load changed since the
    /// last drain (ascending). The hybrid engine uses this to refresh
    /// only the congestion marks that could have moved.
    pub fn take_changed_edges(&mut self) -> Vec<EdgeId> {
        self.ensure_rates();
        let drained: Vec<EdgeId> = self.changed.iter().map(|&e| EdgeId(e as usize)).collect();
        self.changed.clear();
        drained
    }

    /// The instant the next completion would occur if nothing else
    /// changes (the same horizon [`FlowSim::advance_to`] steps to),
    /// or `None` when no active flow is progressing.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        self.ensure_rates();
        let next = self.next_completion_secs();
        if next.is_finite() {
            Some(
                self.now
                    + SimDuration::from_secs_f64(next).saturating_add(SimDuration::from_nanos(1)),
            )
        } else {
            None
        }
    }

    /// Seconds until the next completion among active flows (the
    /// reference fold order: ascending flow index, `f64::min`).
    fn next_completion_secs(&self) -> f64 {
        self.active
            .iter()
            .filter_map(|&ix| {
                let f = &self.flows[ix as usize];
                if f.rate_bps <= 0.0 {
                    // Starved flow (all paths at zero capacity): never
                    // completes on its own.
                    if f.remaining_bits <= 0.0 {
                        Some(0.0)
                    } else {
                        None
                    }
                } else {
                    Some(f.remaining_bits / f.rate_bps)
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Advances virtual time to `until`, returning every completion that
    /// occurs on the way (in order).
    pub fn advance_to(&mut self, until: SimTime) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        while self.now < until {
            self.ensure_rates();
            let next = self.next_completion_secs();
            let step_end = if next.is_finite() {
                // Round the completion horizon *up* to a whole nanosecond
                // so virtual time always advances (sub-ns remainders are
                // swept up by the completion epsilon below).
                let step =
                    SimDuration::from_secs_f64(next).saturating_add(SimDuration::from_nanos(1));
                let tc = self.now + step;
                if tc <= until {
                    tc
                } else {
                    until
                }
            } else {
                until
            };
            let dt = (step_end - self.now).as_secs_f64();
            {
                let flows = &mut self.flows;
                for &ix in &self.active {
                    let f = &mut flows[ix as usize];
                    f.remaining_bits -= f.rate_bps * dt;
                }
            }
            self.now = step_end;
            // Mark completions: exactly drained, or less than one
            // nanosecond of transmission left (the progress guarantee).
            let done: Vec<u32> = self
                .active
                .iter()
                .copied()
                .filter(|&ix| {
                    let f = &self.flows[ix as usize];
                    f.remaining_bits <= 0.5 || f.remaining_bits <= f.rate_bps * 1e-9
                })
                .collect();
            for &ix in &done {
                self.finish_flow(ix);
                events.push(FlowEvent {
                    flow: FlowId(ix as usize),
                    at: self.now,
                });
            }
            if !next.is_finite() && done.is_empty() {
                // Nothing will change before `until`.
                self.now = until;
                break;
            }
        }
        events
    }

    /// Retires a completed flow: releases its edge memberships and marks
    /// the edges dirty so the freed bandwidth is re-shared.
    fn finish_flow(&mut self, ix: u32) {
        let f = &mut self.flows[ix as usize];
        f.finished = Some(self.now);
        f.remaining_bits = 0.0;
        f.rate_bps = 0.0;
        let path = std::mem::take(&mut self.flows[ix as usize].path);
        for e in &path {
            self.edges[e.0].members.remove(&ix);
            self.dirty.insert(e.0 as u32);
        }
        self.flows[ix as usize].path = path;
        self.active.remove(&ix);
    }

    /// Runs until every flow completes or stalls (zero rate). Returns all
    /// completions.
    ///
    /// Stalled flows (rate 0 with bytes remaining) terminate the loop to
    /// avoid spinning forever; the caller can detect them via
    /// [`FlowSim::active_flows`].
    pub fn run_until_idle(&mut self) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        loop {
            self.ensure_rates();
            let next = self
                .active
                .iter()
                .map(|&ix| &self.flows[ix as usize])
                .filter(|f| f.rate_bps > 0.0)
                .map(|f| f.remaining_bits / f.rate_bps)
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }
            let target = self.now + SimDuration::from_secs_f64(next);
            // Nudge past float truncation so the completing flow's
            // remaining bits actually reach ~zero.
            let target = target + SimDuration::from_nanos(1);
            events.extend(self.advance_to(target));
        }
        events
    }

    /// Aggregate instantaneous rate over a set of flows (for throughput
    /// time-series).
    #[must_use]
    pub fn aggregate_rate(&mut self, flows: &[FlowId]) -> Bandwidth {
        self.ensure_rates();
        let sum: f64 = flows
            .iter()
            .filter_map(|f| self.flows.get(f.0))
            .filter(|f| f.finished.is_none())
            .map(|f| f.rate_bps)
            .sum();
        Bandwidth::bps(sum as u64)
    }

    /// Brings every stored rate up to date, re-solving only the
    /// saturation components reachable from dirty edges.
    fn ensure_rates(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        self.stats.solves += 1;
        if self.force_full {
            self.stats.full_solves += 1;
            self.stats.flows_resolved += self.active.len() as u64;
            self.stats.edges_resolved += self.edges.len() as u64;
            let rates = self.solve_full_rates();
            for &ix in &self.active {
                self.flows[ix as usize].rate_bps = rates[ix as usize];
            }
            for e in 0..self.edges.len() {
                self.refresh_edge_load(e);
                self.changed.insert(e as u32);
            }
            self.dirty.clear();
            return;
        }
        self.solve_incremental();
        if self.check_full {
            self.stats.full_solves += 1;
            self.assert_matches_reference();
        }
    }

    /// The incremental path: component discovery from the dirty edges,
    /// then heap-driven progressive filling restricted to the component.
    /// Performs the reference solver's floating-point operations in the
    /// reference order, so results are bit-identical to a full solve.
    fn solve_incremental(&mut self) {
        let n_edges = self.edges.len();
        let n_flows = self.flows.len();
        let sc = &mut self.scratch;
        sc.rem.resize(n_edges, 0.0);
        sc.count.resize(n_edges, 0);
        sc.edge_seen.resize(n_edges, 0);
        sc.edge_touched.resize(n_edges, 0);
        sc.flow_seen.resize(n_flows, 0);
        sc.flow_fixed.resize(n_flows, 0);
        sc.epoch += 1;
        let epoch = sc.epoch;

        // --- Component discovery: BFS over flow↔edge incidence from the
        // dirty edges. Only flows transitively sharing an edge with a
        // dirty edge can see their max-min rate change.
        let mut comp_edges: Vec<u32> = Vec::new();
        let mut comp_flows: Vec<u32> = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &e in &self.dirty {
            if self.edges[e as usize].members.is_empty() {
                // No active flows cross it: its load is zero and nothing
                // else depends on it.
                if self.edges[e as usize].load_bps != 0.0 {
                    self.edges[e as usize].load_bps = 0.0;
                }
                self.changed.insert(e);
            } else if sc.edge_seen[e as usize] != epoch {
                sc.edge_seen[e as usize] = epoch;
                comp_edges.push(e);
                queue.push_back(e);
            }
        }
        self.dirty.clear();
        while let Some(e) = queue.pop_front() {
            for &fx in self.edges[e as usize].members.keys() {
                if sc.flow_seen[fx as usize] == epoch {
                    continue;
                }
                sc.flow_seen[fx as usize] = epoch;
                comp_flows.push(fx);
                for pe in &self.flows[fx as usize].path {
                    let pe = pe.0 as u32;
                    if sc.edge_seen[pe as usize] != epoch {
                        sc.edge_seen[pe as usize] = epoch;
                        comp_edges.push(pe);
                        queue.push_back(pe);
                    }
                }
            }
        }
        self.stats.flows_resolved += comp_flows.len() as u64;
        self.stats.edges_resolved += comp_edges.len() as u64;
        self.stats.max_component_flows =
            self.stats.max_component_flows.max(comp_flows.len() as u64);

        // --- Fresh waterfilling state for the component (identical to
        // the reference solver's initial state restricted to it).
        for &e in &comp_edges {
            sc.rem[e as usize] = self.edges[e as usize].capacity_bps;
            sc.count[e as usize] = 0;
        }
        for &fx in &comp_flows {
            for pe in &self.flows[fx as usize].path {
                sc.count[pe.0] += 1;
            }
        }
        sc.heap.clear();
        for &e in &comp_edges {
            let count = sc.count[e as usize];
            if count > 0 {
                let fair = sc.rem[e as usize].max(0.0) / f64::from(count);
                sc.heap.push(Reverse((fair.to_bits(), e)));
            }
        }

        // --- Progressive filling. Each round pops the bottleneck (the
        // loaded edge with the minimal fair share, lowest index on
        // ties — exactly the reference scan's pick), freezes its unfixed
        // flows in ascending flow order, and charges each frozen flow's
        // rate along its path in path order. Stale heap entries are
        // skipped by recomputing the popped edge's current fair share;
        // every loaded edge always has an entry for its current value,
        // so the first valid pop is the true minimum.
        let mut unfixed = comp_flows.len();
        let mut freeze_buf: Vec<u32> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        while let Some(Reverse((bits, e))) = sc.heap.pop() {
            let count = sc.count[e as usize];
            if count == 0 {
                continue;
            }
            let fair = sc.rem[e as usize].max(0.0) / f64::from(count);
            if fair.to_bits() != bits {
                continue; // Stale entry; the current one is still queued.
            }
            sc.round += 1;
            let round = sc.round;
            freeze_buf.clear();
            freeze_buf.extend(
                self.edges[e as usize]
                    .members
                    .keys()
                    .copied()
                    .filter(|&fx| sc.flow_fixed[fx as usize] != epoch),
            );
            touched.clear();
            for &fx in &freeze_buf {
                sc.flow_fixed[fx as usize] = epoch;
                self.flows[fx as usize].rate_bps = fair;
                unfixed -= 1;
                for pe in &self.flows[fx as usize].path {
                    let pe = pe.0;
                    sc.rem[pe] -= fair;
                    sc.count[pe] -= 1;
                    if sc.edge_touched[pe] != round {
                        sc.edge_touched[pe] = round;
                        touched.push(pe as u32);
                    }
                }
            }
            for &pe in &touched {
                let count = sc.count[pe as usize];
                if count > 0 {
                    let fair = sc.rem[pe as usize].max(0.0) / f64::from(count);
                    sc.heap.push(Reverse((fair.to_bits(), pe)));
                }
            }
        }
        debug_assert_eq!(unfixed, 0, "progressive filling left unfixed flows");

        for &e in &comp_edges {
            self.refresh_edge_load(e as usize);
            self.changed.insert(e);
        }
    }

    /// Recomputes an edge's allocated load from its member set
    /// (ascending flow order — a stable accumulation order).
    fn refresh_edge_load(&mut self, e: usize) {
        let mut sum = 0.0;
        for (&fx, &mult) in &self.edges[e].members {
            sum += self.flows[fx as usize].rate_bps * f64::from(mult);
        }
        self.edges[e].load_bps = sum;
    }

    /// The O(F·E) reference: from-scratch progressive filling over every
    /// active flow, exactly as the pre-incremental solver computed it.
    /// Returns the rate for every flow slot (finished slots stay 0).
    fn solve_full_rates(&self) -> Vec<f64> {
        let n_edges = self.edges.len();
        let mut rates: Vec<f64> = vec![0.0; self.flows.len()];
        let active: Vec<usize> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.finished.is_none())
            .map(|(ix, _)| ix)
            .collect();
        let mut fixed: Vec<bool> = vec![false; self.flows.len()];
        // Flows with empty paths are unconstrained: give them an
        // effectively infinite rate so they complete immediately.
        for &ix in &active {
            if self.flows[ix].path.is_empty() {
                rates[ix] = UNCONSTRAINED_BPS;
                fixed[ix] = true;
            }
        }
        let mut remaining_cap: Vec<f64> = self.edges.iter().map(|e| e.capacity_bps).collect();
        let mut unfixed_count: Vec<usize> = vec![0; n_edges];
        loop {
            unfixed_count.fill(0);
            for &ix in &active {
                if !fixed[ix] {
                    for e in &self.flows[ix].path {
                        unfixed_count[e.0] += 1;
                    }
                }
            }
            // Bottleneck edge: minimal fair share among loaded edges.
            let mut best: Option<(f64, usize)> = None;
            for e in 0..n_edges {
                if unfixed_count[e] > 0 {
                    let fair = (remaining_cap[e]).max(0.0) / unfixed_count[e] as f64;
                    if best.is_none_or(|(bf, _)| fair < bf) {
                        best = Some((fair, e));
                    }
                }
            }
            let Some((fair, bottleneck)) = best else {
                break;
            };
            // Freeze every unfixed flow crossing the bottleneck at the
            // fair share; charge their rate to all their edges.
            for &ix in &active {
                if !fixed[ix] && self.flows[ix].path.contains(&EdgeId(bottleneck)) {
                    rates[ix] = fair;
                    fixed[ix] = true;
                    for e in &self.flows[ix].path {
                        remaining_cap[e.0] -= fair;
                    }
                }
            }
        }
        rates
    }

    /// Debug gate: every active flow's incremental rate must equal the
    /// reference solver's, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics on the first divergence (a solver bug by definition).
    fn assert_matches_reference(&self) {
        let reference = self.solve_full_rates();
        for &ix in &self.active {
            let got = self.flows[ix as usize].rate_bps;
            let want = reference[ix as usize];
            assert!(
                got.to_bits() == want.to_bits(),
                "incremental solver diverged on flow {ix}: got {got} ({:#x}), reference {want} ({:#x})",
                got.to_bits(),
                want.to_bits(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 125_000_000); // 1 Gbit.
        assert_eq!(s.flow_rate(f).bits_per_sec(), 1_000_000_000);
        let events = s.run_until_idle();
        assert_eq!(events.len(), 1);
        let done = s.finished_at(f).unwrap().as_secs_f64();
        assert!((done - 1.0).abs() < 1e-6, "finished at {done}");
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e], 125_000_000);
        let f2 = s.start_flow(vec![e], 125_000_000);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(f2).bits_per_sec(), 500_000_000);
        s.run_until_idle();
        assert!((s.finished_at(f1).unwrap().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn early_finisher_releases_bandwidth() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let small = s.start_flow(vec![e], 62_500_000); // 0.5 Gbit.
        let big = s.start_flow(vec![e], 125_000_000); // 1.0 Gbit.
        s.run_until_idle();
        // Small: shares 0.5 G for 1 s → done at t=1.
        // Big: 0.5 Gbit left at t=1, then full 1 G → done at t=1.5.
        assert!((s.finished_at(small).unwrap().as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((s.finished_at(big).unwrap().as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_just_proportional() {
        // Classic 3-flow example: flows A (e1), B (e2), C (e1+e2),
        // caps e1=1, e2=2 → C and A bottleneck on e1 at 0.5; B gets 1.5.
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(2));
        let a = s.start_flow(vec![e1], u64::MAX / 16);
        let b = s.start_flow(vec![e2], u64::MAX / 16);
        let c = s.start_flow(vec![e1, e2], u64::MAX / 16);
        assert_eq!(s.flow_rate(a).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(c).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(b).bits_per_sec(), 1_500_000_000);
    }

    #[test]
    fn capacity_change_recomputes() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], u64::MAX / 16);
        assert_eq!(s.flow_rate(f).bits_per_sec(), 1_000_000_000);
        s.set_capacity(e, Bandwidth::mbps(100));
        assert_eq!(s.flow_rate(f).bits_per_sec(), 100_000_000);
        s.set_capacity(e, Bandwidth::ZERO);
        assert_eq!(s.flow_rate(f).bits_per_sec(), 0);
        // Starved flow does not complete.
        let events = s.advance_to(t(10.0));
        assert!(events.is_empty());
        assert_eq!(s.active_flows(), 1);
    }

    #[test]
    fn reroute_moves_load() {
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let f2 = s.start_flow(vec![e1], u64::MAX / 16);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 500_000_000);
        s.reroute(f2, vec![e2]);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 1_000_000_000);
        assert_eq!(s.flow_rate(f2).bits_per_sec(), 1_000_000_000);
    }

    #[test]
    fn advance_to_partial_progress() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 125_000_000); // 1 s of work.
        let events = s.advance_to(t(0.25));
        assert!(events.is_empty());
        assert_eq!(s.now(), t(0.25));
        let events = s.advance_to(t(2.0));
        assert_eq!(events.len(), 1);
        assert!((s.finished_at(f).unwrap().as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(s.now(), t(2.0));
    }

    #[test]
    fn empty_path_completes_instantly() {
        let mut s = FlowSim::new();
        let f = s.start_flow(vec![], 1_000_000);
        let events = s.advance_to(t(0.001));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flow, f);
    }

    #[test]
    fn staged_arrival_dependency() {
        // Orchestration pattern used by the HiBench harness: stage 2
        // starts when stage 1 finishes.
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let s1 = s.start_flow(vec![e], 125_000_000);
        let done1 = s.run_until_idle();
        assert_eq!(done1.len(), 1);
        assert_eq!(done1[0].flow, s1);
        let s2 = s.start_flow(vec![e], 125_000_000);
        s.run_until_idle();
        let total = s.finished_at(s2).unwrap().as_secs_f64();
        assert!((total - 2.0).abs() < 1e-5, "got {total}");
    }

    #[test]
    fn reroute_mid_flow_conserves_bytes() {
        // Move a flow to a new path halfway through: total completion
        // time must reflect both phases exactly.
        let mut s = FlowSim::new();
        let slow = s.add_edge(Bandwidth::mbps(500));
        let fast = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![slow], 125_000_000); // 1 Gbit total.
                                                       // 1 s at 500 Mbps moves half the bits.
        s.advance_to(t(1.0));
        s.reroute(f, vec![fast]);
        s.run_until_idle();
        // Remaining 0.5 Gbit at 1 Gbps = 0.5 s ⇒ done at 1.5 s.
        let done = s.finished_at(f).unwrap().as_secs_f64();
        assert!((done - 1.5).abs() < 1e-6, "finished at {done}");
    }

    #[test]
    fn reroute_after_finish_is_a_noop() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 1_000);
        s.run_until_idle();
        let done = s.finished_at(f).unwrap();
        s.reroute(f, vec![]);
        assert_eq!(s.finished_at(f), Some(done));
    }

    #[test]
    fn sub_nanosecond_remainders_terminate() {
        // Regression: a flow whose remaining transfer time truncates to
        // zero nanoseconds must still complete (not spin forever).
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 1); // 8 bits = 8 ns.
        let events = s.run_until_idle();
        assert_eq!(events.len(), 1);
        assert!(s.finished_at(f).is_some());
        // And a zero-byte flow.
        let z = s.start_flow(vec![e], 0);
        s.run_until_idle();
        assert!(s.finished_at(z).is_some());
    }

    #[test]
    fn aggregate_rate_sums_active() {
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let f2 = s.start_flow(vec![e2], u64::MAX / 16);
        assert_eq!(s.aggregate_rate(&[f1, f2]).bits_per_sec(), 2_000_000_000);
    }

    #[test]
    fn incremental_matches_reference_under_churn() {
        // Exercise arrivals, departures, re-routes and capacity changes
        // with the divergence gate armed: any drift from the reference
        // solver panics inside ensure_rates.
        let mut s = FlowSim::new();
        s.set_check_full_solve(true);
        let edges: Vec<EdgeId> = (0..8)
            .map(|i| s.add_edge(Bandwidth::mbps(100 + 50 * i)))
            .collect();
        let mut flows = Vec::new();
        for i in 0..24usize {
            let a = edges[i % 8];
            let b = edges[(i * 3 + 1) % 8];
            let f = s.start_flow(vec![a, b], 40_000_000 + (i as u64) * 1_000_000);
            flows.push(f);
            let _ = s.flow_rate(f);
        }
        s.advance_to(t(0.5));
        s.set_capacity(edges[2], Bandwidth::mbps(10));
        let _ = s.flow_rate(flows[2]);
        s.reroute(flows[5], vec![edges[0], edges[7]]);
        s.advance_to(t(1.5));
        s.set_capacity(edges[2], Bandwidth::ZERO);
        s.advance_to(t(2.0));
        s.set_capacity(edges[2], Bandwidth::mbps(400));
        let done = s.run_until_idle();
        assert_eq!(done.len() + s.active_flows(), 24);
        assert_eq!(s.active_flows(), 0, "no flow should starve here");
    }

    #[test]
    fn forced_full_solve_matches_incremental() {
        // Same scripted run under both solver modes: identical rates and
        // identical completion times, bit for bit.
        let script = |s: &mut FlowSim| {
            let e1 = s.add_edge(Bandwidth::gbps(1));
            let e2 = s.add_edge(Bandwidth::mbps(300));
            let e3 = s.add_edge(Bandwidth::mbps(700));
            let a = s.start_flow(vec![e1, e2], 30_000_000);
            let b = s.start_flow(vec![e2, e3], 50_000_000);
            let c = s.start_flow(vec![e1, e3], 70_000_000);
            s.advance_to(t(0.3));
            s.set_capacity(e2, Bandwidth::mbps(150));
            s.run_until_idle();
            [a, b, c].map(|f| s.finished_at(f).unwrap())
        };
        let mut inc = FlowSim::new();
        let mut full = FlowSim::new();
        full.set_force_full_solve(true);
        assert_eq!(script(&mut inc), script(&mut full));
        assert_eq!(full.solver_stats().full_solves, full.solver_stats().solves);
        assert_eq!(inc.solver_stats().full_solves, 0);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        // Two flows on unrelated edges: churn on one must not re-solve
        // the other (that is the whole point of incrementality).
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let f2 = s.start_flow(vec![e2], u64::MAX / 16);
        let _ = s.flow_rate(f1);
        let base = s.solver_stats().flows_resolved;
        // Touch only e2's component.
        s.set_capacity(e2, Bandwidth::mbps(500));
        let _ = s.flow_rate(f2);
        let delta = s.solver_stats().flows_resolved - base;
        assert_eq!(delta, 1, "only f2's component should re-solve");
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 1_000_000_000);
        assert_eq!(s.flow_rate(f2).bits_per_sec(), 500_000_000);
    }

    #[test]
    fn edge_load_and_utilization_track_allocations() {
        let mut s = FlowSim::new();
        let shared = s.add_edge(Bandwidth::gbps(1));
        let spur = s.add_edge(Bandwidth::gbps(2));
        let _f1 = s.start_flow(vec![shared], u64::MAX / 16);
        let _f2 = s.start_flow(vec![shared, spur], u64::MAX / 16);
        assert!((s.edge_load_bps(shared) - 1e9).abs() < 1.0);
        assert!((s.edge_utilization(shared) - 1.0).abs() < 1e-9);
        assert!((s.edge_utilization(spur) - 0.25).abs() < 1e-9);
        // Dead edge carries nothing.
        s.set_capacity(spur, Bandwidth::ZERO);
        assert_eq!(s.edge_utilization(spur), 0.0);
    }

    #[test]
    fn changed_edges_drain_reports_touched_components() {
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let _f2 = s.start_flow(vec![e2], u64::MAX / 16);
        assert_eq!(s.take_changed_edges(), vec![e1, e2]);
        assert!(s.take_changed_edges().is_empty(), "drain clears the set");
        s.reroute(f1, vec![e2]);
        assert_eq!(s.take_changed_edges(), vec![e1, e2]);
    }

    #[test]
    fn next_completion_time_matches_advance() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 125_000_000); // 1 s of work.
        let horizon = s.next_completion_time().unwrap();
        let events = s.advance_to(horizon);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flow, f);
        assert_eq!(events[0].at, horizon);
        assert!(s.next_completion_time().is_none());
    }
}
