//! Flow-level network simulation with max-min fair bandwidth sharing.
//!
//! Packet-level simulation of a multi-minute HiBench job would burn hours
//! of real time without changing the conclusion, so throughput-oriented
//! experiments use this solver instead: every active flow follows a fixed
//! path over capacitated edges, and rates are assigned by progressive
//! filling (the classic max-min fair allocation, which is also what
//! long-lived TCP flows approximate on a shared fabric).
//!
//! The engine is event-driven and externally orchestrated: callers start
//! flows, advance virtual time, observe completions, and may change edge
//! capacities mid-run (failure injection) or start dependent flows when
//! earlier ones complete (shuffle stages, flowlet re-routing).

use dumbnet_types::{Bandwidth, SimDuration, SimTime};

/// Identity of a capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// Identity of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// A completion notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    /// The flow that finished.
    pub flow: FlowId,
    /// When it finished.
    pub at: SimTime,
}

#[derive(Debug, Clone)]
struct Edge {
    capacity_bps: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<EdgeId>,
    remaining_bits: f64,
    rate_bps: f64,
    started: SimTime,
    finished: Option<SimTime>,
}

/// The flow-level simulator.
#[derive(Debug, Default)]
pub struct FlowSim {
    edges: Vec<Edge>,
    flows: Vec<Flow>,
    now: SimTime,
    rates_valid: bool,
}

impl FlowSim {
    /// Creates an empty simulator at time zero.
    #[must_use]
    pub fn new() -> FlowSim {
        FlowSim::default()
    }

    /// Adds a capacitated edge.
    pub fn add_edge(&mut self, capacity: Bandwidth) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            capacity_bps: capacity.bits_per_sec() as f64,
        });
        id
    }

    /// Changes an edge's capacity (e.g. a failed link drops to zero).
    /// Takes effect immediately; active flows re-share.
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge — edges are created by this simulator,
    /// so an out-of-range ID is a caller bug.
    pub fn set_capacity(&mut self, edge: EdgeId, capacity: Bandwidth) {
        self.edges[edge.0].capacity_bps = capacity.bits_per_sec() as f64;
        self.rates_valid = false;
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow of `bytes` along `path` at the current time.
    ///
    /// An empty path means both endpoints share an uncontended segment;
    /// such flows complete instantly on the next advance.
    pub fn start_flow(&mut self, path: Vec<EdgeId>, bytes: u64) -> FlowId {
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            path,
            remaining_bits: bytes as f64 * 8.0,
            rate_bps: 0.0,
            started: self.now,
            finished: None,
        });
        self.rates_valid = false;
        id
    }

    /// Re-routes an active flow onto a new path (flowlet switching /
    /// failover). No-op for finished flows.
    pub fn reroute(&mut self, flow: FlowId, path: Vec<EdgeId>) {
        if let Some(f) = self.flows.get_mut(flow.0) {
            if f.finished.is_none() {
                f.path = path;
                self.rates_valid = false;
            }
        }
    }

    /// The flow's current max-min rate.
    #[must_use]
    pub fn flow_rate(&mut self, flow: FlowId) -> Bandwidth {
        self.ensure_rates();
        Bandwidth::bps(
            self.flows
                .get(flow.0)
                .filter(|f| f.finished.is_none())
                .map_or(0.0, |f| f.rate_bps) as u64,
        )
    }

    /// When the flow finished, if it has.
    #[must_use]
    pub fn finished_at(&self, flow: FlowId) -> Option<SimTime> {
        self.flows.get(flow.0).and_then(|f| f.finished)
    }

    /// Flow completion time (duration from start to finish), if finished.
    #[must_use]
    pub fn completion_time(&self, flow: FlowId) -> Option<SimDuration> {
        let f = self.flows.get(flow.0)?;
        Some(f.finished? - f.started)
    }

    /// Number of unfinished flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.flows.iter().filter(|f| f.finished.is_none()).count()
    }

    /// Advances virtual time to `until`, returning every completion that
    /// occurs on the way (in order).
    pub fn advance_to(&mut self, until: SimTime) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        while self.now < until {
            self.ensure_rates();
            // Next completion among active flows.
            let next = self
                .flows
                .iter()
                .filter(|f| f.finished.is_none())
                .filter_map(|f| {
                    if f.rate_bps <= 0.0 {
                        // Starved flow (all paths at zero capacity):
                        // never completes on its own.
                        if f.remaining_bits <= 0.0 {
                            Some(0.0)
                        } else {
                            None
                        }
                    } else {
                        Some(f.remaining_bits / f.rate_bps)
                    }
                })
                .fold(f64::INFINITY, f64::min);
            let step_end = if next.is_finite() {
                // Round the completion horizon *up* to a whole nanosecond
                // so virtual time always advances (sub-ns remainders are
                // swept up by the completion epsilon below).
                let step =
                    SimDuration::from_secs_f64(next).saturating_add(SimDuration::from_nanos(1));
                let tc = self.now + step;
                if tc <= until {
                    tc
                } else {
                    until
                }
            } else {
                until
            };
            let dt = (step_end - self.now).as_secs_f64();
            for f in &mut self.flows {
                if f.finished.is_none() {
                    f.remaining_bits -= f.rate_bps * dt;
                }
            }
            self.now = step_end;
            // Mark completions: exactly drained, or less than one
            // nanosecond of transmission left (the progress guarantee).
            let mut completed_any = false;
            for (ix, f) in self.flows.iter_mut().enumerate() {
                if f.finished.is_none()
                    && (f.remaining_bits <= 0.5 || f.remaining_bits <= f.rate_bps * 1e-9)
                {
                    f.finished = Some(self.now);
                    f.remaining_bits = 0.0;
                    f.rate_bps = 0.0;
                    completed_any = true;
                    events.push(FlowEvent {
                        flow: FlowId(ix),
                        at: self.now,
                    });
                }
            }
            if completed_any {
                self.rates_valid = false;
            }
            if !next.is_finite() && !completed_any {
                // Nothing will change before `until`.
                self.now = until;
                break;
            }
        }
        events
    }

    /// Runs until every flow completes or stalls (zero rate). Returns all
    /// completions.
    ///
    /// Stalled flows (rate 0 with bytes remaining) terminate the loop to
    /// avoid spinning forever; the caller can detect them via
    /// [`FlowSim::active_flows`].
    pub fn run_until_idle(&mut self) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        loop {
            self.ensure_rates();
            let next = self
                .flows
                .iter()
                .filter(|f| f.finished.is_none() && f.rate_bps > 0.0)
                .map(|f| f.remaining_bits / f.rate_bps)
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }
            let target = self.now + SimDuration::from_secs_f64(next);
            // Nudge past float truncation so the completing flow's
            // remaining bits actually reach ~zero.
            let target = target + SimDuration::from_nanos(1);
            events.extend(self.advance_to(target));
        }
        events
    }

    /// Aggregate instantaneous rate over a set of flows (for throughput
    /// time-series).
    #[must_use]
    pub fn aggregate_rate(&mut self, flows: &[FlowId]) -> Bandwidth {
        self.ensure_rates();
        let sum: f64 = flows
            .iter()
            .filter_map(|f| self.flows.get(f.0))
            .filter(|f| f.finished.is_none())
            .map(|f| f.rate_bps)
            .sum();
        Bandwidth::bps(sum as u64)
    }

    /// Recomputes max-min fair rates by progressive filling.
    fn ensure_rates(&mut self) {
        if self.rates_valid {
            return;
        }
        let n_edges = self.edges.len();
        // Active flows and their paths.
        let active: Vec<usize> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.finished.is_none())
            .map(|(ix, _)| ix)
            .collect();
        let mut fixed: Vec<bool> = vec![false; self.flows.len()];
        // Start everyone at zero.
        for &ix in &active {
            self.flows[ix].rate_bps = 0.0;
        }
        // Flows with empty paths are unconstrained: give them an
        // effectively infinite rate so they complete immediately.
        for &ix in &active {
            if self.flows[ix].path.is_empty() {
                self.flows[ix].rate_bps = f64::MAX / 4.0;
                fixed[ix] = true;
            }
        }
        let mut remaining_cap: Vec<f64> = self.edges.iter().map(|e| e.capacity_bps).collect();
        let mut unfixed_count: Vec<usize> = vec![0; n_edges];
        loop {
            unfixed_count.fill(0);
            for &ix in &active {
                if !fixed[ix] {
                    for e in &self.flows[ix].path {
                        unfixed_count[e.0] += 1;
                    }
                }
            }
            // Bottleneck edge: minimal fair share among loaded edges.
            let mut best: Option<(f64, usize)> = None;
            for e in 0..n_edges {
                if unfixed_count[e] > 0 {
                    let fair = (remaining_cap[e]).max(0.0) / unfixed_count[e] as f64;
                    if best.is_none_or(|(bf, _)| fair < bf) {
                        best = Some((fair, e));
                    }
                }
            }
            let Some((fair, bottleneck)) = best else {
                break;
            };
            // Freeze every unfixed flow crossing the bottleneck at the
            // fair share; charge their rate to all their edges.
            for &ix in &active {
                if !fixed[ix] && self.flows[ix].path.contains(&EdgeId(bottleneck)) {
                    self.flows[ix].rate_bps = fair;
                    fixed[ix] = true;
                    for e in &self.flows[ix].path {
                        remaining_cap[e.0] -= fair;
                    }
                }
            }
        }
        self.rates_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 125_000_000); // 1 Gbit.
        assert_eq!(s.flow_rate(f).bits_per_sec(), 1_000_000_000);
        let events = s.run_until_idle();
        assert_eq!(events.len(), 1);
        let done = s.finished_at(f).unwrap().as_secs_f64();
        assert!((done - 1.0).abs() < 1e-6, "finished at {done}");
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e], 125_000_000);
        let f2 = s.start_flow(vec![e], 125_000_000);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(f2).bits_per_sec(), 500_000_000);
        s.run_until_idle();
        assert!((s.finished_at(f1).unwrap().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn early_finisher_releases_bandwidth() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let small = s.start_flow(vec![e], 62_500_000); // 0.5 Gbit.
        let big = s.start_flow(vec![e], 125_000_000); // 1.0 Gbit.
        s.run_until_idle();
        // Small: shares 0.5 G for 1 s → done at t=1.
        // Big: 0.5 Gbit left at t=1, then full 1 G → done at t=1.5.
        assert!((s.finished_at(small).unwrap().as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((s.finished_at(big).unwrap().as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_just_proportional() {
        // Classic 3-flow example: flows A (e1), B (e2), C (e1+e2),
        // caps e1=1, e2=2 → C and A bottleneck on e1 at 0.5; B gets 1.5.
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(2));
        let a = s.start_flow(vec![e1], u64::MAX / 16);
        let b = s.start_flow(vec![e2], u64::MAX / 16);
        let c = s.start_flow(vec![e1, e2], u64::MAX / 16);
        assert_eq!(s.flow_rate(a).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(c).bits_per_sec(), 500_000_000);
        assert_eq!(s.flow_rate(b).bits_per_sec(), 1_500_000_000);
    }

    #[test]
    fn capacity_change_recomputes() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], u64::MAX / 16);
        assert_eq!(s.flow_rate(f).bits_per_sec(), 1_000_000_000);
        s.set_capacity(e, Bandwidth::mbps(100));
        assert_eq!(s.flow_rate(f).bits_per_sec(), 100_000_000);
        s.set_capacity(e, Bandwidth::ZERO);
        assert_eq!(s.flow_rate(f).bits_per_sec(), 0);
        // Starved flow does not complete.
        let events = s.advance_to(t(10.0));
        assert!(events.is_empty());
        assert_eq!(s.active_flows(), 1);
    }

    #[test]
    fn reroute_moves_load() {
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let f2 = s.start_flow(vec![e1], u64::MAX / 16);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 500_000_000);
        s.reroute(f2, vec![e2]);
        assert_eq!(s.flow_rate(f1).bits_per_sec(), 1_000_000_000);
        assert_eq!(s.flow_rate(f2).bits_per_sec(), 1_000_000_000);
    }

    #[test]
    fn advance_to_partial_progress() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 125_000_000); // 1 s of work.
        let events = s.advance_to(t(0.25));
        assert!(events.is_empty());
        assert_eq!(s.now(), t(0.25));
        let events = s.advance_to(t(2.0));
        assert_eq!(events.len(), 1);
        assert!((s.finished_at(f).unwrap().as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(s.now(), t(2.0));
    }

    #[test]
    fn empty_path_completes_instantly() {
        let mut s = FlowSim::new();
        let f = s.start_flow(vec![], 1_000_000);
        let events = s.advance_to(t(0.001));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flow, f);
    }

    #[test]
    fn staged_arrival_dependency() {
        // Orchestration pattern used by the HiBench harness: stage 2
        // starts when stage 1 finishes.
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let s1 = s.start_flow(vec![e], 125_000_000);
        let done1 = s.run_until_idle();
        assert_eq!(done1.len(), 1);
        assert_eq!(done1[0].flow, s1);
        let s2 = s.start_flow(vec![e], 125_000_000);
        s.run_until_idle();
        let total = s.finished_at(s2).unwrap().as_secs_f64();
        assert!((total - 2.0).abs() < 1e-5, "got {total}");
    }

    #[test]
    fn reroute_mid_flow_conserves_bytes() {
        // Move a flow to a new path halfway through: total completion
        // time must reflect both phases exactly.
        let mut s = FlowSim::new();
        let slow = s.add_edge(Bandwidth::mbps(500));
        let fast = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![slow], 125_000_000); // 1 Gbit total.
                                                       // 1 s at 500 Mbps moves half the bits.
        s.advance_to(t(1.0));
        s.reroute(f, vec![fast]);
        s.run_until_idle();
        // Remaining 0.5 Gbit at 1 Gbps = 0.5 s ⇒ done at 1.5 s.
        let done = s.finished_at(f).unwrap().as_secs_f64();
        assert!((done - 1.5).abs() < 1e-6, "finished at {done}");
    }

    #[test]
    fn reroute_after_finish_is_a_noop() {
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 1_000);
        s.run_until_idle();
        let done = s.finished_at(f).unwrap();
        s.reroute(f, vec![]);
        assert_eq!(s.finished_at(f), Some(done));
    }

    #[test]
    fn sub_nanosecond_remainders_terminate() {
        // Regression: a flow whose remaining transfer time truncates to
        // zero nanoseconds must still complete (not spin forever).
        let mut s = FlowSim::new();
        let e = s.add_edge(Bandwidth::gbps(1));
        let f = s.start_flow(vec![e], 1); // 8 bits = 8 ns.
        let events = s.run_until_idle();
        assert_eq!(events.len(), 1);
        assert!(s.finished_at(f).is_some());
        // And a zero-byte flow.
        let z = s.start_flow(vec![e], 0);
        s.run_until_idle();
        assert!(s.finished_at(z).is_some());
    }

    #[test]
    fn aggregate_rate_sums_active() {
        let mut s = FlowSim::new();
        let e1 = s.add_edge(Bandwidth::gbps(1));
        let e2 = s.add_edge(Bandwidth::gbps(1));
        let f1 = s.start_flow(vec![e1], u64::MAX / 16);
        let f2 = s.start_flow(vec![e2], u64::MAX / 16);
        assert_eq!(s.aggregate_rate(&[f1, f2]).bits_per_sec(), 2_000_000_000);
    }
}
