//! Chaos scenario harness: drive a [`World`](crate::World) under a [`ChaosPlan`]
//! until a caller-supplied convergence predicate holds.
//!
//! The runner is protocol-agnostic — it knows nothing about DumbNet.
//! It applies the plan, advances virtual time in fixed slices, polls
//! the predicate between slices, and reports when (or whether) the
//! system converged, together with the engine's global and per-wire
//! fault accounting. DumbNet-specific invariant checking (stale path
//! tables, discovery termination, all-pairs reachability) is layered on
//! top of this in `dumbnet-core`.

use dumbnet_types::{SimDuration, SimTime};

use crate::engine::{LinkStats, WireId, WorldStats};
use crate::faults::ChaosPlan;
use crate::shard::Engine;

/// Outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// First slice boundary at which the predicate held, if any.
    pub converged_at: Option<SimTime>,
    /// Virtual time when the run stopped (convergence or deadline).
    pub finished_at: SimTime,
    /// When the last *scheduled* disruption (flap, crash, burst) ended;
    /// `None` for purely probabilistic plans. Recovery time is usually
    /// measured from here (or from a specific fault) to `converged_at`.
    pub faults_ended_at: Option<SimTime>,
    /// Global engine counters at the end of the run.
    pub stats: WorldStats,
    /// Per-wire counters at the end of the run.
    pub links: Vec<(WireId, LinkStats)>,
}

impl ChaosReport {
    /// Whether the predicate ever held.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Sum of fault-injected drops (loss + burst + corrupt) across all
    /// wires.
    #[must_use]
    pub fn injected_drops(&self) -> u64 {
        self.stats.drops_loss + self.stats.drops_corrupt
    }
}

/// Drives one chaos scenario to convergence or deadline.
#[derive(Debug, Clone)]
pub struct ChaosRunner {
    /// The disruptions to apply.
    pub plan: ChaosPlan,
    /// Hard stop: the run never advances past this time.
    pub deadline: SimTime,
    /// How often the convergence predicate is polled.
    pub check_every: SimDuration,
}

impl ChaosRunner {
    /// A runner polling convergence every millisecond of virtual time.
    #[must_use]
    pub fn new(plan: ChaosPlan, deadline: SimTime) -> ChaosRunner {
        ChaosRunner {
            plan,
            deadline,
            check_every: SimDuration::from_millis(1),
        }
    }

    /// Overrides the polling interval.
    #[must_use]
    pub fn check_every(mut self, every: SimDuration) -> ChaosRunner {
        self.check_every = every;
        self
    }

    /// Applies the plan and runs `world` in `check_every` slices until
    /// `converged` returns `true` or the deadline passes. The predicate
    /// sees the world quiesced at a slice boundary (no handler is
    /// mid-flight). Generic over [`Engine`], so the same scenario runs
    /// on a single-threaded world or a sharded one.
    pub fn run<E, F>(&self, world: &mut E, mut converged: F) -> ChaosReport
    where
        E: Engine,
        F: FnMut(&E) -> bool,
    {
        self.plan.apply(world);
        let mut converged_at = None;
        loop {
            let next = world.now().after(self.check_every);
            let slice_end = if next > self.deadline {
                self.deadline
            } else {
                next
            };
            world.run_until(slice_end);
            if converged(world) {
                converged_at = Some(world.now());
                break;
            }
            if world.now() >= self.deadline {
                break;
            }
        }
        let links = (0..world.wire_count())
            .map(|ix| {
                let w = WireId::from_raw(ix);
                (w, world.link_stats(w))
            })
            .collect();
        ChaosReport {
            converged_at,
            finished_at: world.now(),
            faults_ended_at: self.plan.last_scheduled_event(),
            stats: world.stats(),
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    use dumbnet_packet::{Packet, Payload};
    use dumbnet_types::{Bandwidth, MacAddr, Path, PortNo};

    use crate::engine::{Ctx, LinkParams, Node, NodeAddr, World};
    use crate::faults::{CrashSchedule, FaultProfile};

    const P1: PortNo = match PortNo::new(1) {
        Some(p) => p,
        None => unreachable!(),
    };

    /// Sends `total` packets, one per 100 µs; counts what it receives.
    struct Chatter {
        total: u64,
        sent: u64,
        received: u64,
        restarts: u32,
    }

    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: PortNo, _pkt: Packet) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.total {
                self.sent += 1;
                let pkt = Packet::data(
                    MacAddr::for_host(0),
                    MacAddr::for_host(1),
                    Path::empty(),
                    0,
                    self.sent,
                    100,
                );
                ctx.send(P1, pkt);
                ctx.set_timer(SimDuration::from_micros(100), 0);
            }
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
            self.restarts += 1;
            // Resume the send loop: the pre-crash timer is dead.
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pair(total: u64) -> (World, NodeAddr, NodeAddr, WireId) {
        let mut w = World::new(7);
        let a = w.add_node(Box::new(Chatter {
            total,
            sent: 0,
            received: 0,
            restarts: 0,
        }));
        let b = w.add_node(Box::new(Chatter {
            total: 0,
            sent: 0,
            received: 0,
            restarts: 0,
        }));
        let params = LinkParams {
            latency: SimDuration::from_micros(1),
            bandwidth: Bandwidth::gbps(1),
            max_queue: SimDuration::from_millis(10),
            ecn_threshold: None,
        };
        let wid = w.wire(a, P1, b, P1, params).unwrap();
        (w, a, b, wid)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO.after(SimDuration::from_millis(ms))
    }

    #[test]
    fn runner_converges_when_predicate_holds() {
        let (mut w, _a, b, wid) = pair(50);
        let plan = ChaosPlan::seeded(3).with_link_fault(wid, FaultProfile::lossy(0.2));
        let report = ChaosRunner::new(plan, t(100)).run(&mut w, |world| {
            world.node::<Chatter>(b).is_some_and(|c| c.received >= 20)
        });
        assert!(report.converged(), "20+ of 50 packets at 20% loss");
        assert!(report.converged_at.unwrap() <= t(100));
        assert!(report.stats.drops_loss > 0);
        // The run stops at the convergence boundary; packets may still
        // be in flight, so accepted ≥ delivered + dropped.
        let (_, ls) = report.links[0];
        assert!(ls.sent >= ls.delivered + ls.drops_loss);
        assert_eq!(report.stats.drops_loss, ls.drops_loss);
    }

    #[test]
    fn runner_hits_deadline_when_predicate_never_holds() {
        let (mut w, _a, _b, wid) = pair(10);
        let plan = ChaosPlan::seeded(3).with_link_fault(wid, FaultProfile::lossy(1.0));
        let report = ChaosRunner::new(plan, t(5)).run(&mut w, |_| false);
        assert!(!report.converged());
        assert_eq!(report.finished_at, t(5));
        // Total loss: everything sent was dropped.
        let (_, ls) = report.links[0];
        assert_eq!(ls.delivered, 0);
        assert_eq!(ls.sent, ls.drops_loss);
    }

    #[test]
    fn crash_and_restart_reported_and_survivable() {
        let (mut w, a, b, _wid) = pair(200);
        // Receiver crashes at 2 ms, back at 5 ms.
        let plan = ChaosPlan::seeded(0).with_crash(CrashSchedule {
            node: b,
            at: t(2),
            restart_after: Some(SimDuration::from_millis(3)),
        });
        assert_eq!(plan.last_scheduled_event(), Some(t(5)));
        let report = ChaosRunner::new(plan, t(60)).run(&mut w, |world| {
            world.node::<Chatter>(a).is_some_and(|c| c.sent == 200)
        });
        assert!(report.converged());
        assert_eq!(report.faults_ended_at, Some(t(5)));
        let recv = w.node::<Chatter>(b).unwrap();
        assert_eq!(recv.restarts, 1);
        assert!(recv.received > 0);
        // In-flight and wire-refused drops both show up somewhere.
        assert!(
            report.stats.drops_crashed + report.stats.drops_down > 0,
            "crash window dropped nothing"
        );
        let sender = w.node::<Chatter>(a).unwrap();
        assert_eq!(sender.sent, 200);
        assert!(recv.received < 200, "crash window lost packets");
    }

    #[test]
    fn injected_loss_rate_tracks_probability() {
        let (mut w, _a, _b, wid) = pair(10_000);
        let plan = ChaosPlan::seeded(5).with_link_fault(wid, FaultProfile::lossy(0.05));
        let report = ChaosRunner::new(plan, t(2_000)).run(&mut w, |_| false);
        // 10 000 sends at 5 %: the drop count must track the configured
        // probability, not just be nonzero (a regression here once hid
        // behind weaker "> 0" assertions).
        assert!(
            (300..700).contains(&report.stats.drops_loss),
            "5% of 10k sends should drop ~500, got {}",
            report.stats.drops_loss
        );
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let (mut w, _a, b, wid) = pair(100);
            let plan = ChaosPlan::seeded(99).with_link_fault(
                wid,
                FaultProfile {
                    loss: 0.1,
                    corrupt: 0.05,
                    jitter: SimDuration::from_micros(50),
                    ..FaultProfile::default()
                },
            );
            let report = ChaosRunner::new(plan, t(50)).run(&mut w, |_| false);
            let received = w.node::<Chatter>(b).unwrap().received;
            (report.stats, report.links, received)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn payload_unused_types_keep_compiling() {
        // Silences dead-code pattern churn if Payload gains variants.
        let p = Packet::data(
            MacAddr::for_host(0),
            MacAddr::for_host(1),
            Path::empty(),
            0,
            0,
            10,
        );
        assert!(matches!(p.payload, Payload::Data { .. }));
    }
}
