//! The deterministic event queue.
//!
//! A binary heap ordered by `(time, seq)`, where `seq` is a monotonically
//! increasing insertion counter: events at the same virtual instant fire
//! in insertion order, making runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dumbnet_types::SimTime;

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, OrdIgnored<E>)>>,
    seq: u64,
}

/// Wrapper that always compares equal so the payload never participates
/// in heap ordering (the `(time, seq)` prefix is already total).
#[derive(Debug)]
struct OrdIgnored<E>(E);

impl<E> PartialEq for OrdIgnored<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for OrdIgnored<E> {}
impl<E> PartialOrd for OrdIgnored<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrdIgnored<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, OrdIgnored(event))));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_types::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::from_nanos(n);
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stable_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::ZERO, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn len_tracks() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
