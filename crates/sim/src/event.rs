//! The deterministic event queue.
//!
//! A calendar queue (bucketed time-wheel) with a binary-heap overflow,
//! ordered by `(time, key)`, where `key` is a caller-supplied 64-bit
//! ordering key. The engine derives keys from event *content* — the
//! causing node and a per-node emission counter — rather than global
//! insertion order, so the relative order of two same-instant events
//! does not depend on which shard pushed first. That property is what
//! lets the sharded PDES engine replay the exact same-seed event order
//! at any shard count. Keys must be unique per instant (the engine
//! guarantees this by construction); ties would otherwise fire in an
//! unspecified but deterministic order.
//!
//! Near-future events — the overwhelming majority in a packet-level
//! simulation, where wire latencies and serialization delays are
//! microseconds — land in a fixed ring of buckets indexed by
//! `time >> BUCKET_SHIFT`. Pushing is an append onto a small vector;
//! popping sorts the active bucket lazily (once, when the cursor
//! reaches it) and then pops from its tail. Events beyond the wheel
//! horizon, or behind the cursor after it advanced past their bucket,
//! go to the overflow heap; `pop` compares the wheel head against the
//! overflow head by `(time, key)`, so the total order is exactly the
//! one a pure-heap implementation would produce.
//!
//! Payloads live in a slab and the wheel/heap carry `(time, key, slot)`
//! triples: sorting, mid-bucket inserts, and heap sift operations move
//! 24-byte entries instead of whole events (a `Packet`-carrying event
//! is ~10× that). The slab recycles slots through a free list, so the
//! queue stops allocating once it has seen its high-water mark — this
//! is what keeps burst workloads (pipelined discovery, patch floods)
//! from going quadratic on same-bucket memmoves.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dumbnet_types::SimTime;

/// log2 of the bucket width in nanoseconds (4.096 µs per bucket).
const BUCKET_SHIFT: u32 = 12;
/// log2 of the wheel size. 1024 buckets × 4.096 µs ≈ 4.2 ms horizon —
/// comfortably covers packet flight times; long timers take the
/// overflow heap, which is no worse than the old implementation.
const WHEEL_BITS: u32 = 10;
const WHEEL: usize = 1 << WHEEL_BITS;

/// One wheel slot. `sorted` buckets hold items in *ascending*
/// `(time, key)` order; the earliest event pops off the front in O(1).
/// Ascending order keeps the hot burst case — a handler scheduling
/// follow-up events into the bucket the cursor is draining — an O(1)
/// tail append in the common case, because per-node emission counters
/// grow monotonically and a handler usually schedules at times ≥ now.
/// (A descending layout puts exactly those pushes at the *front*, an
/// O(n) memmove that goes quadratic on same-instant bursts — the fig10
/// all-pairs ping pattern.)
#[derive(Debug, Default)]
struct Bucket {
    items: VecDeque<(SimTime, u64, u32)>,
    sorted: bool,
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: Vec<Bucket>,
    /// Virtual index (`nanos >> BUCKET_SHIFT`, unwrapped) of the bucket
    /// the cursor is on; the wheel window is `[base_vb, base_vb+WHEEL)`.
    base_vb: u64,
    /// Events pending inside the wheel window.
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Event payloads, indexed by the slot carried in wheel/overflow
    /// entries. `None` slots are free and listed in `free`.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue {
            wheel: (0..WHEEL).map(|_| Bucket::default()).collect(),
            base_vb: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
        }
    }
}

fn vb_of(at: SimTime) -> u64 {
    at.nanos() >> BUCKET_SHIFT
}

const fn slot_of(vb: u64) -> usize {
    (vb as usize) & (WHEEL - 1)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    fn store(&mut self, event: E) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slab[slot as usize] = Some(event);
            slot
        } else {
            let slot = u32::try_from(self.slab.len()).expect("slab outgrew u32 slots");
            self.slab.push(Some(event));
            slot
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let e = self.slab[slot as usize].take().expect("occupied slot");
        self.free.push(slot);
        e
    }

    /// Schedules `event` at `at` with ordering key `key`. Same-instant
    /// events fire in ascending key order regardless of push order.
    pub fn push(&mut self, at: SimTime, key: u64, event: E) {
        let slot = self.store(event);
        let vb = vb_of(at);
        if self.wheel_len == 0 {
            // Empty wheel: the window can be repositioned freely (pop
            // compares against the overflow head, so order still holds).
            self.base_vb = vb;
        }
        if vb >= self.base_vb && vb - self.base_vb < WHEEL as u64 {
            let bucket = &mut self.wheel[slot_of(vb)];
            if bucket.sorted && !bucket.items.is_empty() {
                // The cursor already sorted this bucket (ascending);
                // keep the invariant. A fresh push usually carries the
                // largest key at its instant (per-node counters grow
                // monotonically), so this is typically an O(1) tail
                // append.
                let back = bucket.items.back().expect("non-empty sorted bucket");
                if (at, key) >= (back.0, back.1) {
                    bucket.items.push_back((at, key, slot));
                } else {
                    let pos = bucket.items.partition_point(|e| (e.0, e.1) < (at, key));
                    bucket.items.insert(pos, (at, key, slot));
                }
            } else {
                bucket.sorted = false;
                bucket.items.push_back((at, key, slot));
            }
            self.wheel_len += 1;
        } else {
            // Beyond the horizon, or behind a cursor that advanced past
            // this bucket while an earlier overflow event was popping.
            self.overflow.push(Reverse((at, key, slot)));
        }
    }

    /// Advances the cursor to the first non-empty bucket and returns the
    /// `(time, key)` of its earliest event. Caller guarantees
    /// `wheel_len > 0`.
    fn wheel_head(&mut self) -> (SimTime, u64) {
        while self.wheel[slot_of(self.base_vb)].items.is_empty() {
            self.base_vb += 1;
        }
        let bucket = &mut self.wheel[slot_of(self.base_vb)];
        if !bucket.sorted {
            bucket
                .items
                .make_contiguous()
                .sort_unstable_by_key(|x| (x.0, x.1));
            bucket.sorted = true;
        }
        let head = bucket.items.front().expect("non-empty bucket");
        (head.0, head.1)
    }

    fn pop_wheel(&mut self) -> (SimTime, E) {
        let bucket = &mut self.wheel[slot_of(self.base_vb)];
        let (t, _, slot) = bucket.items.pop_front().expect("non-empty bucket");
        self.wheel_len -= 1;
        (t, self.take(slot))
    }

    fn pop_overflow(&mut self) -> (SimTime, E) {
        let Reverse((t, _, slot)) = self.overflow.pop().expect("non-empty overflow");
        (t, self.take(slot))
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match (self.wheel_len > 0, self.overflow.peek().is_some()) {
            (false, false) => None,
            (true, false) => {
                self.wheel_head();
                Some(self.pop_wheel())
            }
            (false, true) => Some(self.pop_overflow()),
            (true, true) => {
                let w = self.wheel_head();
                let Reverse((t, s, _)) = self.overflow.peek().expect("peeked");
                if w <= (*t, *s) {
                    Some(self.pop_wheel())
                } else {
                    Some(self.pop_overflow())
                }
            }
        }
    }

    /// Pops the earliest event only if its timestamp is ≤ `until`.
    /// Equivalent to a `peek_time` check followed by `pop`, but does the
    /// cursor advance and bucket sort once instead of twice.
    pub fn pop_before(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        let wheel = if self.wheel_len > 0 {
            Some(self.wheel_head())
        } else {
            None
        };
        let over = self.overflow.peek().map(|Reverse((t, s, _))| (*t, *s));
        let head = match (wheel, over) {
            (None, None) => return None,
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (Some(w), Some(o)) => w.min(o),
        };
        if head.0 > until {
            return None;
        }
        if wheel == Some(head) {
            Some(self.pop_wheel())
        } else {
            Some(self.pop_overflow())
        }
    }

    /// Pops the earliest event only if its timestamp is strictly less
    /// than `end`. This is the synchronization-window pop: a shard
    /// drains everything in `[now, end)` and leaves events at `end` —
    /// the earliest instant a not-yet-exchanged cross-shard arrival
    /// could land on — untouched.
    pub fn pop_strictly_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        let wheel = if self.wheel_len > 0 {
            Some(self.wheel_head())
        } else {
            None
        };
        let over = self.overflow.peek().map(|Reverse((t, s, _))| (*t, *s));
        let head = match (wheel, over) {
            (None, None) => return None,
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (Some(w), Some(o)) => w.min(o),
        };
        if head.0 >= end {
            return None;
        }
        if wheel == Some(head) {
            Some(self.pop_wheel())
        } else {
            Some(self.pop_overflow())
        }
    }

    /// The `(time, key)` of the earliest event without removing it.
    /// Used by the zero-lookahead global merge, which must compare
    /// heads *across* shard queues before popping.
    #[must_use]
    pub fn peek_head(&self) -> Option<(SimTime, u64)> {
        let wheel_head = if self.wheel_len > 0 {
            let mut vb = self.base_vb;
            loop {
                let bucket = &self.wheel[slot_of(vb)];
                if !bucket.items.is_empty() {
                    break Some(if bucket.sorted {
                        let f = bucket.items.front().expect("non-empty");
                        (f.0, f.1)
                    } else {
                        bucket
                            .items
                            .iter()
                            .map(|e| (e.0, e.1))
                            .min()
                            .expect("non-empty")
                    });
                }
                vb += 1;
            }
        } else {
            None
        };
        let over_head = self.overflow.peek().map(|Reverse((t, s, _))| (*t, *s));
        match (wheel_head, over_head) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (h, None) | (None, h) => h,
        }
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel_t = if self.wheel_len > 0 {
            let mut vb = self.base_vb;
            loop {
                let bucket = &self.wheel[slot_of(vb)];
                if !bucket.items.is_empty() {
                    break Some(if bucket.sorted {
                        bucket.items.front().expect("non-empty").0
                    } else {
                        bucket.items.iter().map(|e| e.0).min().expect("non-empty")
                    });
                }
                vb += 1;
            }
        } else {
            None
        };
        let over_t = self.overflow.peek().map(|Reverse((t, _, _))| *t);
        match (wheel_t, over_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (t, None) | (None, t) => t,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_types::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::from_nanos(n);
        q.push(t(30), 0, "c");
        q.push(t(10), 1, "a");
        q.push(t(20), 2, "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.peek_head(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn key_order_wins_at_equal_times_regardless_of_push_order() {
        let mut q = EventQueue::new();
        // Push keys in a scrambled order; pops must come out by key.
        for i in 0..100u64 {
            q.push(SimTime::ZERO, (i * 37) % 100, (i * 37) % 100);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn len_tracks() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0, 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_recycle() {
        let mut q: EventQueue<u64> = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // Steady-state churn: capacity must stop growing once the
        // high-water mark (2 pending) is reached.
        for i in 0..1_000u64 {
            q.push(t(i), i, i);
            q.push(t(i), i + 1, i + 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
            assert_eq!(q.pop().map(|(_, e)| e), Some(i + 1));
        }
        assert!(
            q.slab.len() <= 2,
            "slab grew past high-water: {}",
            q.slab.len()
        );
    }

    #[test]
    fn far_future_takes_overflow_and_comes_back_ordered() {
        let mut q = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // Anchor the window near zero, then push past the ~4 ms horizon.
        q.push(t(3), 0, "early");
        q.push(t(50_000), 1, "late");
        q.push(t(20_000), 2, "mid");
        assert!(!q.overflow.is_empty(), "horizon overflow expected");
        assert_eq!(q.pop(), Some((t(3), "early")));
        assert_eq!(q.pop(), Some((t(20_000), "mid")));
        assert_eq!(q.pop(), Some((t(50_000), "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_split_across_wheel_and_overflow_stay_key_ordered() {
        let mut q = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        // Window anchored near zero; t=10 ms exceeds the horizon.
        q.push(t(1), 100, 100u32);
        q.push(t(10_000), 0, 0);
        assert!(!q.overflow.is_empty(), "horizon overflow expected");
        assert_eq!(q.pop(), Some((t(1), 100)));
        // Wheel now empty: this push reseats the window, so the same
        // instant lives in the wheel AND the overflow. The overflow
        // event carries the smaller key and must still come out first.
        q.push(t(10_000), 1, 1);
        assert_eq!(q.wheel_len, 1, "reseated push should take the wheel");
        assert_eq!(q.peek_head(), Some((t(10_000), 0)));
        assert_eq!(q.pop(), Some((t(10_000), 0)));
        assert_eq!(q.pop(), Some((t(10_000), 1)));
    }

    #[test]
    fn push_behind_cursor_still_delivered_in_order() {
        let mut q = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        q.push(t(0), 0, "first");
        q.push(t(6_000), 1, "ovf"); // Past the horizon → overflow.
        assert_eq!(q.pop(), Some((t(0), "first")));
        // Wheel empty: this reseats the window at ~7 ms…
        q.push(t(7_000), 2, "wheel");
        // …so the overflow event at 6 ms pops with the cursor already
        // parked *ahead* of it, on the 7 ms bucket.
        assert_eq!(q.pop(), Some((t(6_000), "ovf")));
        // A push between now (6 ms) and the cursor (7 ms) is perfectly
        // legal and must detour via overflow, not be lost or reordered.
        q.push(t(6_500), 3, "behind");
        assert_eq!(q.pop(), Some((t(6_500), "behind")));
        assert_eq!(q.pop(), Some((t(7_000), "wheel")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        q.push(t(10), 0, "a");
        q.push(t(30), 1, "b");
        assert_eq!(q.pop_before(t(20)), Some((t(10), "a")));
        assert_eq!(q.pop_before(t(20)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(t(30)), Some((t(30), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_strictly_before_excludes_the_bound() {
        let mut q = EventQueue::new();
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        q.push(t(10), 0, "a");
        q.push(t(20), 1, "b");
        assert_eq!(q.pop_strictly_before(t(20)), Some((t(10), "a")));
        // An event exactly at the window end stays queued.
        assert_eq!(q.pop_strictly_before(t(20)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_strictly_before(t(21)), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_wraps_across_many_horizons() {
        let mut q = EventQueue::new();
        let t = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);
        // Scatter pushes over ~100 ms (≈ 25 horizons) and check the
        // drain order against a sorted reference.
        let mut expect = Vec::new();
        for i in 0..1000u64 {
            let at = t(i * 97 % 100_000);
            q.push(at, i, i);
            expect.push((at, i));
        }
        expect.sort();
        for (at, i) in expect {
            assert_eq!(q.pop(), Some((at, i)));
        }
        assert!(q.is_empty());
    }
}
