//! The hybrid flow/packet engine: one fabric, two coupled planes.
//!
//! [`HybridWorld`] wraps a packet-level [`World`] and a flow-level
//! [`FlowSim`] over the *same* fabric: every directed flow edge is bound
//! to (one direction of) a packet-plane wire through the shared
//! wire↔edge mapping (`dumbnet_topology::EdgeMap`, materialized by the
//! fabric builder). Long-lived elephants run in the flow plane at
//! max-min rates; mice and control frames stay packet-level. The planes
//! advance in lockstep and are coupled at the boundary:
//!
//! * **Faults flow downward.** Administrative link changes, crash and
//!   restart events, and fault-profile installs scheduled through the
//!   [`Engine`] surface are mirrored into flow-edge capacities: a down
//!   wire (or crashed endpoint) zeroes its edges, a lossy profile scales
//!   them by the expected goodput `(1−loss)·(1−corrupt)` sampled at the
//!   instant the profile lands (piecewise-constant approximation of
//!   time-varying ramps). Controller quarantine patches arrive through
//!   [`HybridWorld::set_quarantined`] and also zero their edges, so
//!   chaos hits both planes consistently.
//! * **Congestion flows upward.** Whenever a re-solve changes an edge's
//!   allocated load, edges whose utilization crosses the configured
//!   threshold assert external ECN on their wire direction
//!   ([`World::set_external_congestion`]): packet-plane mice crossing an
//!   elephant-saturated link get ECN-marked, their receivers echo the
//!   marks, and `ext::ecn`-style routing functions reroute them — the
//!   flow plane steering the packet plane without simulating a single
//!   elephant packet.
//!
//! Determinism: both planes are seeded and event-ordered; capacity
//! events apply in `(time, registration order)`; flow completions are
//! surfaced in flow-index order. Same seed ⇒ byte-identical results.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use dumbnet_packet::Packet;
use dumbnet_telemetry::{TelemetrySnapshot, TraceEvent};
use dumbnet_types::{Bandwidth, PortNo, Result, SimTime};

use crate::engine::{LinkParams, LinkStats, Node, NodeAddr, WireId, World, WorldStats};
use crate::faults::FaultProfile;
use crate::flowsim::{EdgeId, FlowEvent, FlowId, FlowSim, SolverStats};
use crate::shard::Engine;

/// Counters describing boundary-coupling activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HybridStats {
    /// Capacity updates applied to flow edges (faults, link state,
    /// crashes, quarantine).
    pub cap_events: u64,
    /// Quarantine state transitions applied to flow edges.
    pub quarantine_flips: u64,
    /// External ECN mark assertions/clears pushed to the packet plane.
    pub ecn_mark_flips: u64,
    /// Flow-plane completions observed.
    pub completions: u64,
}

/// Per-edge bookkeeping: where the edge maps and why its capacity is
/// what it is. Effective capacity =
/// `admin_up && endpoints alive && !quarantined ? nominal × fault_scale : 0`.
#[derive(Debug, Clone)]
struct EdgeBinding {
    /// The packet-plane wire this edge models, if bound.
    wire: Option<WireId>,
    /// Which direction of the wire (0 = a→b).
    dir: usize,
    /// Healthy-link capacity.
    nominal: Bandwidth,
    /// Administrative wire state (mirrors `World::wire_up`).
    admin_up: bool,
    /// True while either wire endpoint is crashed.
    endpoint_down: bool,
    /// Goodput scale from the installed fault profile.
    fault_scale: f64,
    /// True while a controller quarantine covers this edge.
    quarantined: bool,
    /// True while this edge asserts external ECN on its wire.
    marked: bool,
}

/// A deferred flow-plane capacity update, applied when both planes
/// reach its timestamp.
#[derive(Debug, Clone)]
enum CapEvent {
    /// Re-read the administrative state of one wire.
    WireSync(WireId),
    /// Re-read the crash state of all wires touching one node.
    NodeSync(NodeAddr),
    /// Install a goodput scale pair (dir 0, dir 1) on a wire's edges.
    FaultScale(WireId, [f64; 2]),
}

/// The hybrid engine. Implements [`Engine`], so fabric construction,
/// chaos plans and invariant checkers drive it unmodified.
pub struct HybridWorld {
    world: World,
    flow: FlowSim,
    edges: Vec<EdgeBinding>,
    /// Wire → flow edges bound to it.
    wire_edges: BTreeMap<WireId, Vec<usize>>,
    /// Deferred capacity events, time-ordered (same-instant events
    /// apply in registration order).
    pending_caps: BTreeMap<SimTime, Vec<CapEvent>>,
    /// Flow completions not yet drained by the caller.
    pending_events: Vec<FlowEvent>,
    /// Utilization at or above which an edge asserts external ECN on
    /// its wire; `None` disables the upward coupling.
    ecn_util_threshold: Option<f64>,
    stats: HybridStats,
}

impl HybridWorld {
    /// Fraction of capacity an elephant-loaded edge must reach before
    /// its wire starts ECN-marking packet-plane traffic.
    pub const DEFAULT_ECN_UTILIZATION: f64 = 0.95;

    /// Creates a hybrid world with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> HybridWorld {
        HybridWorld {
            world: World::new(seed),
            flow: FlowSim::new(),
            edges: Vec::new(),
            wire_edges: BTreeMap::new(),
            pending_caps: BTreeMap::new(),
            pending_events: Vec::new(),
            ecn_util_threshold: Some(HybridWorld::DEFAULT_ECN_UTILIZATION),
            stats: HybridStats::default(),
        }
    }

    /// Creates a flow edge bound to direction `dir` (0 = a→b) of
    /// `wire`, or an unbound edge (`None` — a purely logical segment).
    /// Edges must be created in the shared enumeration order; the
    /// returned id is dense from zero.
    pub fn bind_edge(&mut self, wire: Option<WireId>, dir: usize, nominal: Bandwidth) -> EdgeId {
        assert!(dir < 2, "wire direction must be 0 (a→b) or 1 (b→a)");
        let id = self.flow.add_edge(nominal);
        self.edges.push(EdgeBinding {
            wire,
            dir,
            nominal,
            admin_up: true,
            endpoint_down: false,
            fault_scale: 1.0,
            quarantined: false,
            marked: false,
        });
        if let Some(w) = wire {
            self.wire_edges.entry(w).or_default().push(id.0);
        }
        id
    }

    /// The packet plane (a plain [`World`]); all [`Engine`] methods
    /// delegate here, so this is only needed for world-specific extras.
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable packet-plane access.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The flow plane. Capacities of bound edges are owned by the
    /// hybrid coupling (faults, quarantine) — callers should treat this
    /// as read/query access plus solver configuration
    /// ([`FlowSim::set_check_full_solve`]), not set capacities directly.
    pub fn flow_mut(&mut self) -> &mut FlowSim {
        &mut self.flow
    }

    /// Number of bound flow edges.
    #[must_use]
    pub fn flow_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Boundary-coupling counters.
    #[must_use]
    pub fn hybrid_stats(&self) -> HybridStats {
        self.stats
    }

    /// Flow-plane solver counters.
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        self.flow.solver_stats()
    }

    /// Sets (or disables) the utilization threshold for upward ECN
    /// coupling.
    pub fn set_ecn_utilization_threshold(&mut self, threshold: Option<f64>) {
        self.ecn_util_threshold = threshold;
    }

    /// Starts an elephant of `bytes` along `path` (shared-enumeration
    /// edge ids) at the current time.
    pub fn start_elephant(&mut self, path: Vec<EdgeId>, bytes: u64) -> FlowId {
        let now = self.world.now();
        self.sync_flow_to(now);
        let id = self.flow.start_flow(path, bytes);
        self.refresh_marks();
        id
    }

    /// Re-routes an active elephant (flowlet switching / failover).
    pub fn reroute_elephant(&mut self, flow: FlowId, path: Vec<EdgeId>) {
        let now = self.world.now();
        self.sync_flow_to(now);
        self.flow.reroute(flow, path);
        self.refresh_marks();
    }

    /// The elephant's current max-min rate.
    pub fn elephant_rate(&mut self, flow: FlowId) -> Bandwidth {
        self.flow.flow_rate(flow)
    }

    /// When the elephant finished, if it has.
    #[must_use]
    pub fn finished_at(&self, flow: FlowId) -> Option<SimTime> {
        self.flow.finished_at(flow)
    }

    /// Number of unfinished elephants.
    #[must_use]
    pub fn active_elephants(&self) -> usize {
        self.flow.active_flows()
    }

    /// Drains buffered flow-plane completions (in completion order).
    pub fn drain_flow_events(&mut self) -> Vec<FlowEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Fraction of an edge's effective capacity allocated to elephants.
    pub fn edge_utilization(&mut self, edge: EdgeId) -> f64 {
        self.flow.edge_utilization(edge)
    }

    /// The worst (maximum) edge utilization along a path — the signal
    /// utilization-aware flowlet placement ranks candidate paths by.
    pub fn path_utilization(&mut self, path: &[EdgeId]) -> f64 {
        let mut worst: f64 = 0.0;
        for &e in path {
            worst = worst.max(self.flow.edge_utilization(e));
        }
        worst
    }

    /// Replaces the set of quarantined flow edges (absolute, idempotent
    /// — the caller derives it from controller state). Newly covered
    /// edges drop to zero capacity; released edges return to their
    /// fault- and link-state-derived capacity.
    pub fn set_quarantined(&mut self, quarantined: &BTreeSet<EdgeId>) {
        for ix in 0..self.edges.len() {
            let want = quarantined.contains(&EdgeId(ix));
            if self.edges[ix].quarantined != want {
                self.edges[ix].quarantined = want;
                self.stats.quarantine_flips += 1;
                self.apply_effective_capacity(ix);
            }
        }
        self.refresh_marks();
    }

    /// Advances both planes to `until`, stopping early at the first
    /// flow-plane completion so the caller can react (start dependent
    /// flows, re-route flowlets) with both planes paused at the same
    /// instant. Returns the completions at the stopping point (empty
    /// when `until` was reached without one).
    pub fn advance(&mut self, until: SimTime) -> Vec<FlowEvent> {
        loop {
            let mut target = until;
            if let Some((&t, _)) = self.pending_caps.iter().next() {
                target = target.min(t);
            }
            if let Some(t) = self.flow.next_completion_time() {
                target = target.min(t);
            }
            self.world.run_until(target);
            self.sync_flow_to(target);
            if !self.pending_events.is_empty() || target >= until {
                return self.drain_flow_events();
            }
        }
    }

    /// Applies every capacity event due at or before `target`, advancing
    /// the flow plane in step, then brings it to `target` exactly.
    /// The packet plane must already have reached `target`.
    fn sync_flow_to(&mut self, target: SimTime) {
        while let Some((&t, _)) = self.pending_caps.iter().next() {
            if t > target {
                break;
            }
            let events = self.flow.advance_to(t);
            self.buffer_events(events);
            let batch = self.pending_caps.remove(&t).expect("peeked key exists");
            for ev in batch {
                self.apply_cap(&ev);
            }
        }
        if self.flow.now() < target {
            let events = self.flow.advance_to(target);
            self.buffer_events(events);
        }
        self.refresh_marks();
    }

    fn buffer_events(&mut self, events: Vec<FlowEvent>) {
        self.stats.completions += events.len() as u64;
        self.pending_events.extend(events);
    }

    fn apply_cap(&mut self, ev: &CapEvent) {
        match *ev {
            CapEvent::WireSync(wire) => {
                let up = self.world.wire_up(wire);
                for ix in self.bound_edges(wire) {
                    if self.edges[ix].admin_up != up {
                        self.edges[ix].admin_up = up;
                        self.apply_effective_capacity(ix);
                    }
                }
            }
            CapEvent::NodeSync(node) => {
                // A crash forces incident wires down inside the packet
                // engine without an admin event; re-read endpoint health
                // for every edge whose wire touches the node.
                for ix in 0..self.edges.len() {
                    let Some(wire) = self.edges[ix].wire else {
                        continue;
                    };
                    let ((a, _), (b, _)) = self.world.wire_endpoints(wire);
                    if a != node && b != node {
                        continue;
                    }
                    let down = self.world.is_crashed(a) || self.world.is_crashed(b);
                    let up = self.world.wire_up(wire);
                    let e = &mut self.edges[ix];
                    if e.endpoint_down != down || e.admin_up != up {
                        e.endpoint_down = down;
                        e.admin_up = up;
                        self.apply_effective_capacity(ix);
                    }
                }
            }
            CapEvent::FaultScale(wire, scales) => {
                for ix in self.bound_edges(wire) {
                    let scale = scales[self.edges[ix].dir];
                    if (self.edges[ix].fault_scale - scale).abs() > f64::EPSILON {
                        self.edges[ix].fault_scale = scale;
                        self.apply_effective_capacity(ix);
                    }
                }
            }
        }
    }

    fn bound_edges(&self, wire: WireId) -> Vec<usize> {
        self.wire_edges.get(&wire).cloned().unwrap_or_default()
    }

    /// Recomputes one edge's effective capacity and pushes it into the
    /// flow plane.
    fn apply_effective_capacity(&mut self, ix: usize) {
        let e = &self.edges[ix];
        let capacity = if e.admin_up && !e.endpoint_down && !e.quarantined {
            Bandwidth::bps((e.nominal.bits_per_sec() as f64 * e.fault_scale) as u64)
        } else {
            Bandwidth::ZERO
        };
        self.flow.set_capacity(EdgeId(ix), capacity);
        self.stats.cap_events += 1;
    }

    /// Pushes external ECN marks for every edge whose allocated load
    /// changed since the last refresh.
    fn refresh_marks(&mut self) {
        let Some(threshold) = self.ecn_util_threshold else {
            return;
        };
        for edge in self.flow.take_changed_edges() {
            let util = self.flow.edge_utilization(edge);
            let e = &mut self.edges[edge.0];
            let want = util >= threshold;
            if e.marked != want {
                e.marked = want;
                if let Some(wire) = e.wire {
                    self.world.set_external_congestion(wire, e.dir, want);
                    self.stats.ecn_mark_flips += 1;
                }
            }
        }
    }

    /// The goodput scale a fault profile imposes on each wire
    /// direction, sampled at `at`.
    fn profile_scales(profile: &FaultProfile, at: SimTime) -> [f64; 2] {
        let corrupt = profile.corrupt_at(at).clamp(0.0, 1.0);
        let scale = |dir: usize| {
            let loss = profile.loss_at(at, dir).clamp(0.0, 1.0);
            (1.0 - loss) * (1.0 - corrupt)
        };
        [scale(0), scale(1)]
    }

    fn push_cap(&mut self, at: SimTime, ev: CapEvent) {
        self.pending_caps.entry(at).or_default().push(ev);
    }
}

impl Engine for HybridWorld {
    fn add_node(&mut self, node: Box<dyn Node>) -> NodeAddr {
        self.world.add_node(node)
    }

    fn add_node_in_cell(&mut self, node: Box<dyn Node>, cell: u32) -> NodeAddr {
        self.world.add_node_in_cell(node, cell)
    }

    fn wire(
        &mut self,
        a: NodeAddr,
        pa: PortNo,
        b: NodeAddr,
        pb: PortNo,
        params: LinkParams,
    ) -> Result<WireId> {
        self.world.wire(a, pa, b, pb, params)
    }

    fn node<T: 'static>(&self, addr: NodeAddr) -> Option<&T> {
        self.world.node(addr)
    }

    fn node_mut<T: 'static>(&mut self, addr: NodeAddr) -> Option<&mut T> {
        self.world.node_mut(addr)
    }

    fn node_count(&self) -> usize {
        self.world.node_count()
    }

    fn node_cell(&self, addr: NodeAddr) -> u32 {
        self.world.node_cell(addr)
    }

    fn cell_count(&self) -> usize {
        1
    }

    fn wire_count(&self) -> usize {
        self.world.wire_count()
    }

    fn wire_at(&self, node: NodeAddr, port: PortNo) -> Option<WireId> {
        self.world.wire_at(node, port)
    }

    fn wire_endpoints(&self, wire: WireId) -> ((NodeAddr, PortNo), (NodeAddr, PortNo)) {
        self.world.wire_endpoints(wire)
    }

    fn wire_up(&self, wire: WireId) -> bool {
        self.world.wire_up(wire)
    }

    fn wire_params(&self, wire: WireId) -> LinkParams {
        self.world.wire_params(wire)
    }

    fn link_stats(&self, wire: WireId) -> LinkStats {
        self.world.link_stats(wire)
    }

    fn is_crashed(&self, node: NodeAddr) -> bool {
        self.world.is_crashed(node)
    }

    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn stats(&self) -> WorldStats {
        self.world.stats()
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.world.next_event_time()
    }

    fn run_until(&mut self, until: SimTime) -> WorldStats {
        // Interleave: stop the packet plane at every pending capacity
        // event so both planes see it at the same instant.
        while let Some((&t, _)) = self.pending_caps.iter().next() {
            if t > until {
                break;
            }
            self.world.run_until(t);
            self.sync_flow_to(t);
        }
        let stats = self.world.run_until(until);
        self.sync_flow_to(until);
        stats
    }

    fn run_to_idle(&mut self, max_events: u64) -> WorldStats {
        let stats = self.world.run_to_idle(max_events);
        let now = self.world.now();
        self.sync_flow_to(now);
        stats
    }

    fn inject(&mut self, at: SimTime, node: NodeAddr, port: PortNo, pkt: Packet) {
        self.world.inject(at, node, port, pkt);
    }

    fn schedule_crash(&mut self, at: SimTime, node: NodeAddr) {
        self.world.schedule_crash(at, node);
        self.push_cap(at, CapEvent::NodeSync(node));
    }

    fn schedule_restart(&mut self, at: SimTime, node: NodeAddr) {
        self.world.schedule_restart(at, node);
        self.push_cap(at, CapEvent::NodeSync(node));
    }

    fn schedule_link_state(&mut self, at: SimTime, wire: WireId, up: bool) {
        self.world.schedule_link_state(at, wire, up);
        self.push_cap(at, CapEvent::WireSync(wire));
    }

    fn schedule_fault_profile(&mut self, at: SimTime, wire: WireId, profile: FaultProfile) {
        let scales = HybridWorld::profile_scales(&profile, at);
        self.world.schedule_fault_profile(at, wire, profile);
        self.push_cap(at, CapEvent::FaultScale(wire, scales));
    }

    fn set_fault_profile(&mut self, wire: WireId, profile: FaultProfile) {
        let now = self.world.now();
        let scales = HybridWorld::profile_scales(&profile, now);
        self.world.set_fault_profile(wire, profile);
        self.sync_flow_to(now);
        self.apply_cap(&CapEvent::FaultScale(wire, scales));
        self.refresh_marks();
    }

    fn set_fault_seed(&mut self, seed: u64) {
        self.world.set_fault_seed(seed);
    }

    fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        self.world.telemetry_snapshot()
    }

    fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64) {
        Engine::trace_tail(&self.world, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dumbnet_types::SimDuration;
    use std::any::Any;

    /// A node that swallows everything (the packet plane is incidental
    /// to these tests).
    struct Sink;

    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut crate::engine::Ctx<'_>, _in_port: PortNo, _pkt: Packet) {
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO.after(SimDuration::from_secs_f64(secs))
    }

    /// Two sinks joined by one wire; both directions bound as edges.
    fn rig() -> (HybridWorld, WireId, EdgeId, EdgeId) {
        let mut h = HybridWorld::new(7);
        let a = h.add_node(Box::new(Sink));
        let b = h.add_node(Box::new(Sink));
        let p = PortNo::new(1).unwrap();
        let wire = h.wire(a, p, b, p, LinkParams::ten_gig()).unwrap();
        let e0 = h.bind_edge(Some(wire), 0, Bandwidth::gbps(10));
        let e1 = h.bind_edge(Some(wire), 1, Bandwidth::gbps(10));
        (h, wire, e0, e1)
    }

    #[test]
    fn elephants_run_at_wire_capacity() {
        let (mut h, _w, e0, _e1) = rig();
        let f = h.start_elephant(vec![e0], 12_500_000_000); // 100 Gbit = 10 s.
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 10_000_000_000);
        let events = h.advance(t(20.0));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flow, f);
        let done = h.finished_at(f).unwrap().as_secs_f64();
        assert!((done - 10.0).abs() < 1e-6, "finished at {done}");
        assert_eq!(h.now(), events[0].at, "planes stop together");
    }

    #[test]
    fn scheduled_link_down_starves_the_flow_plane() {
        let (mut h, w, e0, _e1) = rig();
        let f = h.start_elephant(vec![e0], u64::MAX / 16);
        h.schedule_link_state(t(1.0), w, false);
        let events = h.advance(t(2.0));
        assert!(events.is_empty());
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 0, "edge must be dead");
        // Heal: capacity returns.
        h.schedule_link_state(t(3.0), w, true);
        h.advance(t(4.0));
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 10_000_000_000);
        assert!(h.hybrid_stats().cap_events >= 2);
    }

    #[test]
    fn crash_and_restart_reach_flow_capacity() {
        let (mut h, _w, e0, _e1) = rig();
        let victim = NodeAddr(0);
        let f = h.start_elephant(vec![e0], u64::MAX / 16);
        h.schedule_crash(t(1.0), victim);
        h.run_until(t(2.0));
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 0);
        h.schedule_restart(t(3.0), victim);
        h.run_until(t(4.0));
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 10_000_000_000);
    }

    #[test]
    fn lossy_profile_scales_capacity() {
        let (mut h, w, e0, e1) = rig();
        let f0 = h.start_elephant(vec![e0], u64::MAX / 16);
        let f1 = h.start_elephant(vec![e1], u64::MAX / 16);
        h.set_fault_profile(w, FaultProfile::lossy(0.25));
        assert_eq!(h.elephant_rate(f0).bits_per_sec(), 7_500_000_000);
        assert_eq!(h.elephant_rate(f1).bits_per_sec(), 7_500_000_000);
        // Direction-selective loss only scales one edge.
        h.set_fault_profile(w, FaultProfile::lossy_dir(1, 0.5));
        assert_eq!(h.elephant_rate(f0).bits_per_sec(), 10_000_000_000);
        assert_eq!(h.elephant_rate(f1).bits_per_sec(), 5_000_000_000);
    }

    #[test]
    fn quarantine_zeroes_and_releases() {
        let (mut h, _w, e0, _e1) = rig();
        let f = h.start_elephant(vec![e0], u64::MAX / 16);
        let mut q = BTreeSet::new();
        q.insert(e0);
        h.set_quarantined(&q);
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 0);
        h.set_quarantined(&BTreeSet::new());
        assert_eq!(h.elephant_rate(f).bits_per_sec(), 10_000_000_000);
        assert_eq!(h.hybrid_stats().quarantine_flips, 2);
    }

    #[test]
    fn saturated_edge_asserts_external_ecn() {
        let (mut h, _w, e0, _e1) = rig();
        assert_eq!(h.hybrid_stats().ecn_mark_flips, 0);
        let f = h.start_elephant(vec![e0], u64::MAX / 16);
        // One elephant saturates the edge → mark asserted.
        assert_eq!(h.hybrid_stats().ecn_mark_flips, 1);
        // Kill the elephant's edge → utilization collapses → mark clears.
        let mut q = BTreeSet::new();
        q.insert(e0);
        h.set_quarantined(&q);
        assert_eq!(h.hybrid_stats().ecn_mark_flips, 2);
        let _ = f;
    }

    #[test]
    fn run_until_buffers_completions() {
        let (mut h, _w, e0, e1) = rig();
        let a = h.start_elephant(vec![e0], 1_250_000_000); // 1 s.
        let b = h.start_elephant(vec![e1], 2_500_000_000); // 2 s.
        h.run_until(t(5.0));
        let events = h.drain_flow_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].flow, a);
        assert_eq!(events[1].flow, b);
        assert!(events[0].at < events[1].at);
        assert_eq!(h.hybrid_stats().completions, 2);
    }
}
