//! Deterministic discrete-event network emulator and flow-level solver.
//!
//! The paper evaluates DumbNet beyond its 7-switch testbed on a software
//! emulator "similar to the architecture of Mininet" (§7). This crate is
//! our equivalent substrate, in two complementary engines:
//!
//! * [`engine`] — a packet-level discrete-event simulator. Nodes
//!   (switches, hosts, controllers — implemented in the `dumbnet-switch`,
//!   `dumbnet-host` and `dumbnet-controller` crates against the [`Node`]
//!   trait) exchange [`Packet`](dumbnet_packet::Packet)s over links with
//!   propagation latency, store-and-forward serialization and FIFO
//!   output queueing. Virtual time is nanoseconds; execution is fully
//!   deterministic for a given seed.
//! * [`flowsim`] — a flow-level max-min fair bandwidth solver for
//!   long-running throughput experiments (aggregate throughput, HiBench
//!   jobs) where packet-level simulation would be needlessly slow.
//! * [`hybrid`] — the coupled flow/packet engine: elephants in the flow
//!   plane, mice and control frames in the packet plane, faults and
//!   quarantine mirrored downward and ECN pressure mirrored upward over
//!   the shared wire↔edge mapping.
//!
//! Both engines are generic: they know nothing about DumbNet semantics,
//! only about moving bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod event;
pub mod faults;
pub mod flowsim;
pub mod hybrid;
pub mod shard;

pub use chaos::{ChaosReport, ChaosRunner};
pub use engine::{Ctx, LinkParams, LinkStats, Node, NodeAddr, WireId, World, WorldStats};
pub use faults::{
    BurstWindow, ChaosPlan, CrashSchedule, FaultProfile, FlapSchedule, PartitionSchedule,
};
pub use flowsim::{EdgeId, FlowEvent, FlowId, FlowSim, SolverStats};
pub use hybrid::{HybridStats, HybridWorld};
pub use shard::{Engine, ShardedWorld};
