//! Fault injection: per-link fault profiles and deterministic chaos
//! plans.
//!
//! The engine models a *healthy* fabric by default: wires deliver every
//! packet they accept, switches never die. Real data centers misbehave —
//! §7 of the paper evaluates failure handling by killing links, and any
//! loss-tolerant control plane needs an adversarial substrate to be
//! tested against. This module supplies that substrate:
//!
//! * [`FaultProfile`] — per-wire probabilistic packet loss, bit
//!   corruption (dropped at delivery: the receiver's FCS check would
//!   reject the mangled frame anyway), uniform delivery jitter (which
//!   reorders packets), and bounded-burst drop windows during which the
//!   wire blackholes everything. Gray-failure shapes extend the basic
//!   probabilities: asymmetric per-direction loss ([`FaultProfile::
//!   loss_dir`]), a [`LossRamp`] that degrades the wire progressively,
//!   and [`CorruptWindow`]s of intermittent bit corruption.
//! * [`FlapSchedule`] — periodic administrative link down/up cycles.
//! * [`CrashSchedule`] — switch (or host) crash and optional restart.
//! * [`PartitionSchedule`] — a network partition: named cells whose
//!   cross-cell wires all go down for a window, then heal.
//! * [`ChaosPlan`] — a seeded, fully deterministic bundle of all of the
//!   above, applied to any [`Engine`] (a [`World`](crate::World) or a
//!   [`ShardedWorld`](crate::ShardedWorld)) in one call.
//!
//! Fault randomness draws from a dedicated RNG seeded from
//! [`ChaosPlan::seed`], *separate* from the world's own RNG: the same
//! workload under two different chaos seeds sees identical application
//! behaviour, and replaying a plan reproduces the exact same drops.

use dumbnet_types::{SimDuration, SimTime};

use crate::engine::{NodeAddr, WireId};
use crate::shard::Engine;

/// Per-wire fault behaviour. The default profile is fault-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability in `[0, 1]` that a packet accepted onto the wire is
    /// lost in flight.
    pub loss: f64,
    /// Probability in `[0, 1]` that a packet is bit-corrupted in
    /// flight. Corrupted packets are counted separately from plain
    /// losses and dropped before delivery (the FCS would not verify).
    pub corrupt: f64,
    /// Maximum extra delivery delay, drawn uniformly from
    /// `[0, jitter]` per packet. Because arrival order follows the
    /// event queue, jitter larger than a packet gap reorders packets.
    pub jitter: SimDuration,
    /// Absolute time windows during which the wire drops everything
    /// (models a flaky transceiver browning out in bursts).
    pub bursts: Vec<BurstWindow>,
    /// Additional per-direction loss probability, indexed by the
    /// engine's wire direction (0 = a→b, 1 = b→a). Models the common
    /// gray failure where only one direction of an optic degrades;
    /// added on top of `loss` for packets travelling that way.
    pub loss_dir: [f64; 2],
    /// Progressive degradation: loss ramping linearly over a window and
    /// staying at the final rate afterwards. Added on top of `loss`.
    pub ramp: Option<LossRamp>,
    /// Intermittent corruption windows; while one is open its
    /// probability is added on top of `corrupt` (models a marginal
    /// transceiver flipping bits in episodes rather than uniformly).
    pub corrupt_windows: Vec<CorruptWindow>,
}

impl FaultProfile {
    /// A profile that only loses packets, with probability `p`.
    #[must_use]
    pub fn lossy(p: f64) -> FaultProfile {
        FaultProfile {
            loss: p,
            ..FaultProfile::default()
        }
    }

    /// A profile that loses packets in one direction only (the
    /// asymmetric gray failure: dir 0 is a→b on the wire, 1 is b→a).
    #[must_use]
    pub fn lossy_dir(dir: usize, p: f64) -> FaultProfile {
        let mut loss_dir = [0.0, 0.0];
        loss_dir[dir.min(1)] = p;
        FaultProfile {
            loss_dir,
            ..FaultProfile::default()
        }
    }

    /// Whether this profile can ever affect a packet.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.loss <= 0.0
            && self.corrupt <= 0.0
            && self.jitter == SimDuration::ZERO
            && self.bursts.is_empty()
            && self.loss_dir[0] <= 0.0
            && self.loss_dir[1] <= 0.0
            && self.ramp.is_none()
            && self.corrupt_windows.is_empty()
    }

    /// Whether `t` falls inside any burst-drop window.
    #[must_use]
    pub fn in_burst(&self, t: SimTime) -> bool {
        self.bursts
            .iter()
            .any(|b| t >= b.start && t < b.start.after(b.duration))
    }

    /// Effective loss probability for a packet departing at `t` in wire
    /// direction `dir`: the base rate plus the directional extra plus
    /// the ramp contribution, clamped to `[0, 1]`. Exactly `loss` when
    /// no gray shape is configured, so legacy profiles draw the same
    /// RNG sequence they always did.
    #[must_use]
    pub fn loss_at(&self, t: SimTime, dir: usize) -> f64 {
        let mut p = self.loss + self.loss_dir[dir.min(1)];
        if let Some(r) = &self.ramp {
            p += r.rate_at(t);
        }
        p.clamp(0.0, 1.0)
    }

    /// Effective corruption probability at departure time `t`: the base
    /// rate plus every open corruption window, clamped to `[0, 1]`.
    /// Exactly `corrupt` when no window is configured.
    #[must_use]
    pub fn corrupt_at(&self, t: SimTime) -> f64 {
        let mut p = self.corrupt;
        for w in &self.corrupt_windows {
            if t >= w.start && t < w.start.after(w.duration) {
                p += w.probability;
            }
        }
        p.clamp(0.0, 1.0)
    }
}

/// A linear loss ramp: a link degrading progressively instead of
/// failing outright. Before `start` it contributes nothing; during
/// `[start, start + duration)` the contribution interpolates linearly
/// from `from` to `to`; afterwards it stays at `to` (a degraded optic
/// does not heal by itself — schedule a profile change to model repair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossRamp {
    /// When degradation begins.
    pub start: SimTime,
    /// How long the rate takes to reach `to`.
    pub duration: SimDuration,
    /// Loss contribution at `start`.
    pub from: f64,
    /// Loss contribution at `start + duration` and forever after.
    pub to: f64,
}

impl LossRamp {
    /// The ramp's loss contribution at time `t`.
    #[must_use]
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if t < self.start {
            return 0.0;
        }
        let end = self.start.after(self.duration);
        if t >= end || self.duration == SimDuration::ZERO {
            return self.to;
        }
        let frac = (t - self.start).nanos() as f64 / self.duration.nanos() as f64;
        self.from + (self.to - self.from) * frac
    }
}

/// A bounded window of elevated bit corruption on one wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptWindow {
    /// When the window opens.
    pub start: SimTime,
    /// How long it stays open.
    pub duration: SimDuration,
    /// Corruption probability added while open.
    pub probability: f64,
}

/// A bounded window of total packet loss on one wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstWindow {
    /// When the burst begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
}

/// A periodic administrative down/up cycle for one wire.
///
/// Cycle `i` takes the wire down at `first_down + i·period` and back up
/// `down_for` later. Both endpoints get carrier notifications, exactly
/// as with [`World::schedule_link_state`](crate::World::schedule_link_state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// The wire to flap.
    pub wire: WireId,
    /// Start of the first down phase.
    pub first_down: SimTime,
    /// Length of each down phase. Must be shorter than `period`.
    pub down_for: SimDuration,
    /// Distance between successive down phases.
    pub period: SimDuration,
    /// Number of down/up cycles.
    pub cycles: u32,
}

/// A node crash, with an optional later restart.
///
/// A crashed node is deaf: arrivals addressed to it are discarded (and
/// counted), its pending timers are suppressed, and every incident wire
/// is taken down so neighbours observe carrier loss. On restart the
/// wires come back up and the node's
/// [`Node::on_restart`](crate::Node::on_restart) hook runs with all
/// volatile progress (outstanding timers) gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The node to crash.
    pub node: NodeAddr,
    /// When it crashes.
    pub at: SimTime,
    /// How long it stays dead; `None` means forever.
    pub restart_after: Option<SimDuration>,
}

/// A network partition: the fabric is cut into named cells for a
/// window, then healed.
///
/// Every wire whose two endpoints sit in *different* cells goes
/// administratively down at `start` and comes back at
/// `start + heal_after`. Cuts are physical: a wire is severed only if
/// both endpoints are listed and in different cells, so nodes left out
/// of every cell keep all their wires. Endpoint membership is resolved
/// against the world when the plan is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSchedule {
    /// Named cells: `(label, member nodes)`. Labels are for reports
    /// and debugging only.
    pub cells: Vec<(String, Vec<NodeAddr>)>,
    /// When the cut happens.
    pub start: SimTime,
    /// How long the cut lasts before every severed wire heals.
    pub heal_after: SimDuration,
}

impl PartitionSchedule {
    /// Cell index of `node`, if it is listed in any cell.
    fn cell_of(&self, node: NodeAddr) -> Option<usize> {
        self.cells
            .iter()
            .position(|(_, members)| members.contains(&node))
    }

    /// The wires this partition severs: every wire whose endpoints
    /// resolve to two different cells.
    #[must_use]
    pub fn severed_wires<E: Engine>(&self, world: &E) -> Vec<WireId> {
        let mut cut = Vec::new();
        for ix in 0..world.wire_count() {
            let wire = WireId::from_raw(ix);
            let ((a, _), (b, _)) = world.wire_endpoints(wire);
            if let (Some(ca), Some(cb)) = (self.cell_of(a), self.cell_of(b)) {
                if ca != cb {
                    cut.push(wire);
                }
            }
        }
        cut
    }
}

/// A complete, deterministic chaos scenario.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for the fault RNG (loss/corrupt coin flips, jitter draws).
    pub seed: u64,
    /// Per-wire fault profiles.
    pub link_faults: Vec<(WireId, FaultProfile)>,
    /// Link flap schedules.
    pub flaps: Vec<FlapSchedule>,
    /// Node crash schedules.
    pub crashes: Vec<CrashSchedule>,
    /// Partition windows.
    pub partitions: Vec<PartitionSchedule>,
    /// Scheduled mid-run fault-profile replacements: `(at, wire, new
    /// profile)`. This is how gray faults heal (or worsen) while the
    /// run is in flight — replacing the profile with a benign one at
    /// `at` models the optic being reseated.
    pub profile_changes: Vec<(SimTime, WireId, FaultProfile)>,
}

impl ChaosPlan {
    /// A plan with the given fault seed and nothing scheduled.
    #[must_use]
    pub fn seeded(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Adds a fault profile for `wire` (replacing any previous one).
    pub fn with_link_fault(mut self, wire: WireId, profile: FaultProfile) -> ChaosPlan {
        self.link_faults.retain(|(w, _)| *w != wire);
        self.link_faults.push((wire, profile));
        self
    }

    /// Adds a flap schedule.
    pub fn with_flap(mut self, flap: FlapSchedule) -> ChaosPlan {
        self.flaps.push(flap);
        self
    }

    /// Adds a crash schedule.
    pub fn with_crash(mut self, crash: CrashSchedule) -> ChaosPlan {
        self.crashes.push(crash);
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, partition: PartitionSchedule) -> ChaosPlan {
        self.partitions.push(partition);
        self
    }

    /// Schedules `wire`'s fault profile to be replaced with `profile`
    /// at `at` (mid-run heal or degradation).
    pub fn with_profile_change(
        mut self,
        at: SimTime,
        wire: WireId,
        profile: FaultProfile,
    ) -> ChaosPlan {
        self.profile_changes.push((at, wire, profile));
        self
    }

    /// Installs the whole plan into `world`: seeds the fault RNG, sets
    /// the per-wire profiles, and schedules every flap transition and
    /// crash/restart event. Works on any [`Engine`] — on a sharded
    /// world every scheduled disruption is mirrored into the affected
    /// shards with a shared ordering key, so chaos semantics are
    /// identical at any shard count.
    pub fn apply<E: Engine>(&self, world: &mut E) {
        world.set_fault_seed(self.seed);
        for (wire, profile) in &self.link_faults {
            world.set_fault_profile(*wire, profile.clone());
        }
        for flap in &self.flaps {
            for cycle in 0..flap.cycles {
                let down_at = flap.first_down.after(SimDuration::from_nanos(
                    flap.period.nanos().saturating_mul(u64::from(cycle)),
                ));
                world.schedule_link_state(down_at, flap.wire, false);
                world.schedule_link_state(down_at.after(flap.down_for), flap.wire, true);
            }
        }
        for crash in &self.crashes {
            world.schedule_crash(crash.at, crash.node);
            if let Some(after) = crash.restart_after {
                world.schedule_restart(crash.at.after(after), crash.node);
            }
        }
        for partition in &self.partitions {
            for wire in partition.severed_wires(world) {
                world.schedule_link_state(partition.start, wire, false);
                world.schedule_link_state(partition.start.after(partition.heal_after), wire, true);
            }
        }
        for (at, wire, profile) in &self.profile_changes {
            world.schedule_fault_profile(*at, *wire, profile.clone());
        }
    }

    /// The time of the last scheduled (non-probabilistic) fault event:
    /// final flap recovery or final crash/restart. Probabilistic loss
    /// has no end; this marks when the *deterministic* disruptions stop.
    #[must_use]
    pub fn last_scheduled_event(&self) -> Option<SimTime> {
        let mut last: Option<SimTime> = None;
        let mut update = |t: SimTime| {
            last = Some(match last {
                Some(cur) if cur >= t => cur,
                _ => t,
            });
        };
        for flap in &self.flaps {
            if flap.cycles == 0 {
                continue;
            }
            let last_down = flap.first_down.after(SimDuration::from_nanos(
                flap.period
                    .nanos()
                    .saturating_mul(u64::from(flap.cycles - 1)),
            ));
            update(last_down.after(flap.down_for));
        }
        for crash in &self.crashes {
            match crash.restart_after {
                Some(after) => update(crash.at.after(after)),
                None => update(crash.at),
            }
        }
        let profiles = self
            .link_faults
            .iter()
            .map(|(_, p)| p)
            .chain(self.profile_changes.iter().map(|(_, _, p)| p));
        for profile in profiles {
            for b in &profile.bursts {
                update(b.start.after(b.duration));
            }
            if let Some(r) = &profile.ramp {
                update(r.start.after(r.duration));
            }
            for w in &profile.corrupt_windows {
                update(w.start.after(w.duration));
            }
        }
        for (at, _, _) in &self.profile_changes {
            update(*at);
        }
        for partition in &self.partitions {
            update(partition.start.after(partition.heal_after));
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO.after(SimDuration::from_millis(ms))
    }

    #[test]
    fn burst_windows_are_half_open() {
        let p = FaultProfile {
            bursts: vec![BurstWindow {
                start: t(10),
                duration: SimDuration::from_millis(5),
            }],
            ..FaultProfile::default()
        };
        assert!(!p.in_burst(t(9)));
        assert!(p.in_burst(t(10)));
        assert!(p.in_burst(t(14)));
        assert!(!p.in_burst(t(15)));
    }

    #[test]
    fn benign_detection() {
        assert!(FaultProfile::default().is_benign());
        assert!(!FaultProfile::lossy(0.01).is_benign());
        let jitter_only = FaultProfile {
            jitter: SimDuration::from_micros(1),
            ..FaultProfile::default()
        };
        assert!(!jitter_only.is_benign());
    }

    #[test]
    fn last_scheduled_event_covers_flaps_crashes_bursts() {
        let plan = ChaosPlan::seeded(1)
            .with_flap(FlapSchedule {
                wire: WireId::from_raw(0),
                first_down: t(100),
                down_for: SimDuration::from_millis(10),
                period: SimDuration::from_millis(50),
                cycles: 3,
            })
            .with_crash(CrashSchedule {
                node: NodeAddr(0),
                at: t(120),
                restart_after: Some(SimDuration::from_millis(200)),
            });
        // Last flap recovery: 100 + 2*50 + 10 = 210 ms; crash restart at
        // 320 ms wins.
        assert_eq!(plan.last_scheduled_event(), Some(t(320)));
        assert_eq!(ChaosPlan::default().last_scheduled_event(), None);
    }

    /// A deaf two-port node for wiring test worlds.
    struct Mute;
    impl crate::engine::Node for Mute {
        fn on_packet(
            &mut self,
            _ctx: &mut crate::engine::Ctx<'_>,
            _in_port: dumbnet_types::PortNo,
            _pkt: dumbnet_packet::Packet,
        ) {
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// A 4-node line a—b—c—d; returns the world and its three wires.
    fn line_world() -> (World, [WireId; 3], [NodeAddr; 4]) {
        use crate::engine::LinkParams;
        let p1 = dumbnet_types::PortNo::new(1).unwrap();
        let p2 = dumbnet_types::PortNo::new(2).unwrap();
        let mut w = World::new(0);
        let nodes = [
            w.add_node(Box::new(Mute)),
            w.add_node(Box::new(Mute)),
            w.add_node(Box::new(Mute)),
            w.add_node(Box::new(Mute)),
        ];
        let wires = [
            w.wire(nodes[0], p1, nodes[1], p1, LinkParams::ten_gig())
                .unwrap(),
            w.wire(nodes[1], p2, nodes[2], p1, LinkParams::ten_gig())
                .unwrap(),
            w.wire(nodes[2], p2, nodes[3], p1, LinkParams::ten_gig())
                .unwrap(),
        ];
        (w, wires, nodes)
    }

    #[test]
    fn partition_severs_exactly_cross_cell_wires() {
        let (w, wires, nodes) = line_world();
        let cut = PartitionSchedule {
            cells: vec![
                ("left".into(), vec![nodes[0], nodes[1]]),
                ("right".into(), vec![nodes[2], nodes[3]]),
            ],
            start: t(10),
            heal_after: SimDuration::from_millis(20),
        };
        // Only the b—c wire crosses the cut; intra-cell wires survive.
        assert_eq!(cut.severed_wires(&w), vec![wires[1]]);
    }

    #[test]
    fn unlisted_nodes_keep_all_wires() {
        let (w, _, nodes) = line_world();
        // Node d is in no cell: its wire to c must not be severed even
        // though c is listed.
        let cut = PartitionSchedule {
            cells: vec![
                ("left".into(), vec![nodes[0]]),
                ("right".into(), vec![nodes[1], nodes[2]]),
            ],
            start: t(0),
            heal_after: SimDuration::from_millis(1),
        };
        let severed = cut.severed_wires(&w);
        assert_eq!(severed.len(), 1, "only a—b crosses cells: {severed:?}");
    }

    #[test]
    fn applied_partition_cuts_then_heals() {
        let (mut w, wires, nodes) = line_world();
        let plan = ChaosPlan::seeded(7).with_partition(PartitionSchedule {
            cells: vec![
                ("left".into(), vec![nodes[0], nodes[1]]),
                ("right".into(), vec![nodes[2], nodes[3]]),
            ],
            start: t(10),
            heal_after: SimDuration::from_millis(20),
        });
        assert_eq!(plan.last_scheduled_event(), Some(t(30)));
        plan.apply(&mut w);
        w.run_until(t(15));
        assert!(!w.wire_up(wires[1]), "cross-cell wire still up mid-window");
        assert!(w.wire_up(wires[0]), "intra-cell wire went down");
        assert!(w.wire_up(wires[2]), "intra-cell wire went down");
        w.run_until(t(31));
        assert!(w.wire_up(wires[1]), "cross-cell wire never healed");
    }

    #[test]
    fn directional_loss_only_hits_one_direction() {
        let p = FaultProfile::lossy_dir(1, 0.3);
        assert!(!p.is_benign());
        assert!((p.loss_at(t(0), 0) - 0.0).abs() < f64::EPSILON);
        assert!((p.loss_at(t(0), 1) - 0.3).abs() < f64::EPSILON);
        // Legacy uniform loss stays direction-independent.
        let uniform = FaultProfile::lossy(0.2);
        assert!((uniform.loss_at(t(5), 0) - 0.2).abs() < f64::EPSILON);
        assert!((uniform.loss_at(t(5), 1) - 0.2).abs() < f64::EPSILON);
    }

    #[test]
    fn loss_ramp_interpolates_and_saturates() {
        let p = FaultProfile {
            ramp: Some(LossRamp {
                start: t(100),
                duration: SimDuration::from_millis(100),
                from: 0.0,
                to: 0.5,
            }),
            ..FaultProfile::default()
        };
        assert!(!p.is_benign());
        assert!((p.loss_at(t(50), 0) - 0.0).abs() < f64::EPSILON);
        assert!((p.loss_at(t(150), 0) - 0.25).abs() < 1e-9);
        assert!((p.loss_at(t(200), 0) - 0.5).abs() < f64::EPSILON);
        assert!((p.loss_at(t(900), 0) - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn corrupt_windows_open_and_close() {
        let p = FaultProfile {
            corrupt: 0.01,
            corrupt_windows: vec![CorruptWindow {
                start: t(10),
                duration: SimDuration::from_millis(5),
                probability: 0.4,
            }],
            ..FaultProfile::default()
        };
        assert!((p.corrupt_at(t(9)) - 0.01).abs() < f64::EPSILON);
        assert!((p.corrupt_at(t(12)) - 0.41).abs() < 1e-9);
        assert!((p.corrupt_at(t(15)) - 0.01).abs() < f64::EPSILON);
    }

    #[test]
    fn effective_rates_clamp_to_unit_interval() {
        let p = FaultProfile {
            loss: 0.8,
            loss_dir: [0.8, 0.0],
            ..FaultProfile::default()
        };
        assert!((p.loss_at(t(0), 0) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn last_scheduled_event_covers_gray_shapes() {
        let w = WireId::from_raw(0);
        let plan = ChaosPlan::seeded(1)
            .with_link_fault(
                w,
                FaultProfile {
                    ramp: Some(LossRamp {
                        start: t(10),
                        duration: SimDuration::from_millis(40),
                        from: 0.0,
                        to: 0.3,
                    }),
                    corrupt_windows: vec![CorruptWindow {
                        start: t(20),
                        duration: SimDuration::from_millis(15),
                        probability: 0.2,
                    }],
                    ..FaultProfile::default()
                },
            )
            .with_profile_change(t(120), w, FaultProfile::default());
        assert_eq!(plan.last_scheduled_event(), Some(t(120)));
    }

    #[test]
    fn with_link_fault_replaces_previous_profile() {
        let w = WireId::from_raw(3);
        let plan = ChaosPlan::seeded(0)
            .with_link_fault(w, FaultProfile::lossy(0.5))
            .with_link_fault(w, FaultProfile::lossy(0.1));
        assert_eq!(plan.link_faults.len(), 1);
        assert!((plan.link_faults[0].1.loss - 0.1).abs() < f64::EPSILON);
    }
}
