//! Routing tags — the single byte a dumb switch acts on.
//!
//! A DumbNet switch examines only the first tag of a packet. The tag space
//! is partitioned exactly as in the paper (§3.2 and §4.1):
//!
//! * `1..=254` — "forward this packet out of port *n*".
//! * `0` — switch-ID query: the switch replies with its unique ID along the
//!   remaining path instead of forwarding.
//! * `0xFF` (ø) — end-of-path marker. A host receiving a packet whose next
//!   tag is ø strips it and delivers the payload to the network stack; a
//!   switch seeing ø has been handed a packet that ran out of path and
//!   drops it.

use serde::{Deserialize, Serialize};

use crate::error::DumbNetError;
use crate::ids::PortNo;

/// A one-byte routing tag.
///
/// # Examples
///
/// ```
/// use dumbnet_types::Tag;
///
/// let t = Tag::port(3).unwrap();
/// assert!(t.is_port());
/// assert_eq!(t.as_port().unwrap().get(), 3);
/// assert!(Tag::END.is_end());
/// assert!(Tag::ID_QUERY.is_id_query());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(pub u8);

impl Tag {
    /// The switch-ID query marker (`0`).
    ///
    /// A switch that pops this tag replies with its unique ID along the
    /// remaining tag sequence instead of forwarding the packet.
    pub const ID_QUERY: Tag = Tag(0);

    /// The end-of-path marker ø (`0xFF`), as fixed by §3.2 of the paper.
    pub const END: Tag = Tag(0xFF);

    /// Largest tag value that denotes an output port.
    pub const MAX_PORT: u8 = 0xFE;

    /// Creates a port-forwarding tag for port `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::InvalidPort`] if `n` is `0` (reserved for ID
    /// queries) or `0xFF` (reserved for ø).
    pub fn port(n: u8) -> Result<Tag, DumbNetError> {
        if n == 0 || n == 0xFF {
            Err(DumbNetError::InvalidPort(n))
        } else {
            Ok(Tag(n))
        }
    }

    /// Creates a tag from a validated [`PortNo`].
    #[must_use]
    pub fn from_port(p: PortNo) -> Tag {
        Tag(p.get())
    }

    /// Returns `true` if this tag denotes an output port.
    #[must_use]
    pub fn is_port(self) -> bool {
        self.0 != 0 && self.0 != 0xFF
    }

    /// Returns `true` if this is the switch-ID query marker.
    #[must_use]
    pub fn is_id_query(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this is the end-of-path marker ø.
    #[must_use]
    pub fn is_end(self) -> bool {
        self.0 == 0xFF
    }

    /// Interprets the tag as an output port, if it is one.
    #[must_use]
    pub fn as_port(self) -> Option<PortNo> {
        PortNo::new(self.0)
    }

    /// Raw byte value of the tag.
    #[must_use]
    pub fn byte(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_end() {
            write!(f, "ø")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<PortNo> for Tag {
    fn from(p: PortNo) -> Tag {
        Tag::from_port(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_tags_round_trip() {
        for n in 1..=0xFEu8 {
            let t = Tag::port(n).unwrap();
            assert!(t.is_port());
            assert!(!t.is_end());
            assert!(!t.is_id_query());
            assert_eq!(t.as_port().unwrap().get(), n);
        }
    }

    #[test]
    fn reserved_values_rejected_as_ports() {
        assert!(Tag::port(0).is_err());
        assert!(Tag::port(0xFF).is_err());
    }

    #[test]
    fn markers_classify() {
        assert!(Tag::END.is_end());
        assert!(!Tag::END.is_port());
        assert_eq!(Tag::END.as_port(), None);
        assert!(Tag::ID_QUERY.is_id_query());
        assert!(!Tag::ID_QUERY.is_port());
        assert_eq!(Tag::ID_QUERY.as_port(), None);
    }

    #[test]
    fn display_uses_phi_for_end() {
        assert_eq!(Tag::END.to_string(), "ø");
        assert_eq!(Tag(7).to_string(), "7");
    }
}
