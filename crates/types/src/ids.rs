//! Identifiers for switches, ports, hosts and links.

use serde::{Deserialize, Serialize};

use crate::error::DumbNetError;

/// Unique identity of a switch.
///
/// A DumbNet switch holds no configuration, but it does carry one factory
/// constant: a unique ID it returns in response to an ID-query tag
/// (§4.1). The controller uses these IDs to tell switches apart during
/// topology discovery.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SwitchId(pub u64);

impl SwitchId {
    /// Creates a switch ID from a raw value.
    #[must_use]
    pub fn new(raw: u64) -> SwitchId {
        SwitchId(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SwitchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A validated physical port number on a switch, in `1..=254`.
///
/// Value `0` is reserved for the ID-query tag and `255` for the ø marker,
/// so a DumbNet switch can expose at most 254 ports — comfortably above
/// commodity switch radixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortNo(u8);

impl PortNo {
    /// Creates a port number, returning `None` for the reserved values
    /// `0` and `255`.
    #[must_use]
    pub const fn new(n: u8) -> Option<PortNo> {
        if n == 0 || n == 0xFF {
            None
        } else {
            Some(PortNo(n))
        }
    }

    /// Creates a port number, reporting reserved values as an error.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::InvalidPort`] for `0` and `255`.
    pub fn try_new(n: u8) -> Result<PortNo, DumbNetError> {
        PortNo::new(n).ok_or(DumbNetError::InvalidPort(n))
    }

    /// Raw port number.
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Zero-based index for array storage (`port 1` → `0`).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0) - 1
    }

    /// Inverse of [`PortNo::index`].
    #[must_use]
    pub fn from_index(ix: usize) -> Option<PortNo> {
        u8::try_from(ix + 1).ok().and_then(PortNo::new)
    }

    /// Iterates over the first `count` port numbers of a switch.
    ///
    /// # Examples
    ///
    /// ```
    /// use dumbnet_types::PortNo;
    /// let ports: Vec<u8> = PortNo::first(3).map(|p| p.get()).collect();
    /// assert_eq!(ports, [1, 2, 3]);
    /// ```
    pub fn first(count: u8) -> impl Iterator<Item = PortNo> {
        (1..=count.min(0xFE)).filter_map(PortNo::new)
    }
}

impl std::fmt::Display for PortNo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A (switch, port) pair — one end of a link, written `S3-1` in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId {
    /// The switch this port belongs to.
    pub switch: SwitchId,
    /// The port number on that switch.
    pub port: PortNo,
}

impl PortId {
    /// Creates a port identifier.
    #[must_use]
    pub fn new(switch: SwitchId, port: PortNo) -> PortId {
        PortId { switch, port }
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.switch, self.port)
    }
}

/// Identity of a host (server) attached to the fabric.
///
/// In the real system a host is identified by its MAC address; the
/// emulator additionally keys hosts with this dense numeric ID.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u64);

impl HostId {
    /// Creates a host ID from a raw value.
    #[must_use]
    pub fn new(raw: u64) -> HostId {
        HostId(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// Identity of an undirected link in a topology, assigned by the graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Creates a link ID from a raw value.
    #[must_use]
    pub fn new(raw: u32) -> LinkId {
        LinkId(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Zero-based index for array storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_no_rejects_reserved() {
        assert!(PortNo::new(0).is_none());
        assert!(PortNo::new(255).is_none());
        assert!(PortNo::new(1).is_some());
        assert!(PortNo::new(254).is_some());
        assert!(matches!(
            PortNo::try_new(0),
            Err(DumbNetError::InvalidPort(0))
        ));
    }

    #[test]
    fn port_index_round_trip() {
        for n in 1..=254u8 {
            let p = PortNo::new(n).unwrap();
            assert_eq!(PortNo::from_index(p.index()), Some(p));
        }
        assert!(PortNo::from_index(254).is_none());
    }

    #[test]
    fn display_formats_match_paper_notation() {
        let pid = PortId::new(SwitchId(3), PortNo::new(1).unwrap());
        assert_eq!(pid.to_string(), "S3-1");
        assert_eq!(HostId(4).to_string(), "H4");
    }

    #[test]
    fn first_ports_capped() {
        assert_eq!(PortNo::first(255).count(), 254);
        assert_eq!(PortNo::first(0).count(), 0);
    }
}
