//! Core identifiers, tags, addresses and errors shared by every DumbNet
//! crate.
//!
//! DumbNet (EuroSys '18) is a data-center fabric in which switches hold no
//! forwarding state: hosts write the full path of a packet into the header
//! as a list of one-byte *routing tags*, and each switch pops the head tag
//! and forwards the packet out of that port. The vocabulary of that design
//! lives here:
//!
//! * [`Tag`] — a single routing tag (`1..=254` are output ports, `0` is the
//!   switch-ID query marker, `0xFF` is the end-of-path marker ø).
//! * [`Path`] — an ordered tag sequence describing an entire route.
//! * [`SwitchId`], [`PortNo`], [`PortId`] — switch-side identities.
//! * [`MacAddr`], [`HostId`] — host-side identities.
//! * [`SimTime`], [`SimDuration`], [`Bandwidth`] — virtual-time units used
//!   by the emulator and the analytical models.
//!
//! The crate is dependency-light on purpose: every other crate in the
//! workspace depends on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bandwidth;
pub mod error;
pub mod fasthash;
pub mod ids;
pub mod path;
pub mod tag;
pub mod time;

pub use addr::MacAddr;
pub use bandwidth::Bandwidth;
pub use error::{DumbNetError, Result};
pub use fasthash::{FastHashMap, FastHashSet};
pub use ids::{HostId, LinkId, PortId, PortNo, SwitchId};
pub use path::Path;
pub use tag::Tag;
pub use time::{SimDuration, SimTime};

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::{
        Bandwidth, DumbNetError, HostId, LinkId, MacAddr, Path, PortId, PortNo, Result,
        SimDuration, SimTime, SwitchId, Tag,
    };
}
