//! Layer-2 addressing.

use serde::{Deserialize, Serialize};

use crate::error::DumbNetError;

/// A 48-bit IEEE 802 MAC address.
///
/// DumbNet keeps the original Ethernet header intact (§5.1), so hosts are
/// still identified by MAC addresses; the PathTable on each host is keyed
/// by destination MAC.
///
/// # Examples
///
/// ```
/// use dumbnet_types::MacAddr;
///
/// let mac: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
/// assert_eq!(mac.to_string(), "02:00:00:00:00:2a");
/// assert!(mac.is_locally_administered());
/// assert!(!mac.is_multicast());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Creates an address from raw octets.
    #[must_use]
    pub fn new(octets: [u8; 6]) -> MacAddr {
        MacAddr(octets)
    }

    /// Deterministically derives a locally-administered unicast address
    /// for emulated host `n`.
    ///
    /// The emulator uses this so that host IDs and MAC addresses are
    /// mutually recoverable.
    #[must_use]
    pub fn for_host(n: u64) -> MacAddr {
        let b = n.to_be_bytes();
        // Locally administered (bit 1 of first octet), unicast (bit 0
        // clear); low 40 bits carry the host number.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Recovers the host number from an address created by
    /// [`MacAddr::for_host`], or `None` for foreign addresses.
    #[must_use]
    pub fn host_number(self) -> Option<u64> {
        if self.0[0] != 0x02 {
            return None;
        }
        let mut b = [0u8; 8];
        b[3..8].copy_from_slice(&self.0[1..6]);
        Some(u64::from_be_bytes(b))
    }

    /// Raw octets.
    #[must_use]
    pub fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` for group (multicast/broadcast) addresses.
    #[must_use]
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` for the all-ones broadcast address.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Returns `true` if the locally-administered bit is set.
    #[must_use]
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl std::str::FromStr for MacAddr {
    type Err = DumbNetError;

    fn from_str(s: &str) -> Result<MacAddr, DumbNetError> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| DumbNetError::AddressParse(s.to_owned()))?;
            *octet = u8::from_str_radix(part, 16)
                .map_err(|_| DumbNetError::AddressParse(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(DumbNetError::AddressParse(s.to_owned()));
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_mac_round_trip() {
        for n in [0u64, 1, 27, 1_000_000, 0xFF_FFFF_FFFF] {
            let mac = MacAddr::for_host(n);
            assert_eq!(mac.host_number(), Some(n & 0xFF_FFFF_FFFF));
            assert!(!mac.is_multicast());
            assert!(mac.is_locally_administered());
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let mac: MacAddr = "de:ad:be:ef:00:01".parse().unwrap();
        assert_eq!(mac.octets(), [0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::for_host(1).is_broadcast());
        assert_eq!(MacAddr::BROADCAST.host_number(), None);
    }
}
