//! Link bandwidth and serialization-delay arithmetic.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Link or port bandwidth in bits per second.
///
/// # Examples
///
/// ```
/// use dumbnet_types::Bandwidth;
///
/// let bw = Bandwidth::gbps(10);
/// // A 1500-byte frame serializes in 1.2 µs at 10 Gbps.
/// assert_eq!(bw.serialization_delay(1500).nanos(), 1_200);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Zero bandwidth (used to model administratively-down ports).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Constructs from bits per second.
    #[must_use]
    pub fn bps(b: u64) -> Bandwidth {
        Bandwidth(b)
    }

    /// Constructs from megabits per second.
    #[must_use]
    pub fn mbps(m: u64) -> Bandwidth {
        Bandwidth(m.saturating_mul(1_000_000))
    }

    /// Constructs from gigabits per second.
    #[must_use]
    pub fn gbps(g: u64) -> Bandwidth {
        Bandwidth(g.saturating_mul(1_000_000_000))
    }

    /// Bits per second.
    #[must_use]
    pub fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Gigabits per second as a float (for reporting only).
    #[must_use]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto a link of this bandwidth.
    ///
    /// Returns the maximum representable duration for zero bandwidth so
    /// that "down" links naturally never deliver.
    #[must_use]
    pub fn serialization_delay(self, bytes: usize) -> SimDuration {
        if self.0 == 0 {
            return SimDuration(u64::MAX);
        }
        // ns = bits / (bits/s) * 1e9. Real frames stay far below the
        // u64 overflow bound (~2.3 GB), and that division runs once per
        // transmit — keep it native. Larger requests take the slow
        // u128 path instead of overflowing.
        if let Some(scaled) = (bytes as u64).checked_mul(8_000_000_000) {
            return SimDuration(scaled / self.0);
        }
        let ns = bytes as u128 * 8_000_000_000 / u128::from(self.0);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Bytes transferable in `d` at this bandwidth.
    #[must_use]
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = u128::from(self.0) * u128::from(d.nanos()) / 1_000_000_000;
        u64::try_from(bits / 8).unwrap_or(u64::MAX)
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_matches_hand_math() {
        // 1500 B at 1 Gbps = 12 µs.
        assert_eq!(Bandwidth::gbps(1).serialization_delay(1500).nanos(), 12_000);
        // 64 B at 10 Gbps = 51.2 ns.
        assert_eq!(Bandwidth::gbps(10).serialization_delay(64).nanos(), 51);
    }

    #[test]
    fn zero_bandwidth_never_delivers() {
        assert_eq!(Bandwidth::ZERO.serialization_delay(1).nanos(), u64::MAX);
        assert_eq!(Bandwidth::ZERO.bytes_in(SimDuration::from_secs(1)), 0);
    }

    #[test]
    fn bytes_in_inverts_delay() {
        let bw = Bandwidth::mbps(500);
        let d = bw.serialization_delay(10_000);
        let b = bw.bytes_in(d);
        assert!((b as i64 - 10_000).abs() <= 1, "got {b}");
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::gbps(10).to_string(), "10.00Gbps");
        assert_eq!(Bandwidth::mbps(500).to_string(), "500.00Mbps");
        assert_eq!(Bandwidth::bps(42).to_string(), "42bps");
    }
}
