//! A non-cryptographic hasher for interior maps keyed by small IDs.
//!
//! The standard library's default hasher is SipHash-1-3 — HashDoS-safe,
//! but several nanoseconds per lookup. Most maps inside the simulator are
//! keyed by values the simulator itself allocates (sequential probe IDs,
//! dense switch IDs), so an adversary never chooses the keys and the
//! DoS defence buys nothing. In the discovery hot loop (one insert, one
//! remove, and several probes of `outstanding` per probe, millions of
//! probes per figure run) the hashing shows up in profiles.
//!
//! [`FxHasher64`] is the word-at-a-time multiply-xor scheme used by the
//! Firefox and rustc internals: fold each word in with a rotate-xor, then
//! multiply by a 64-bit odd constant so the entropy of low-bit-varying
//! keys (sequential counters) spreads into the high bits that hashbrown
//! uses for its control bytes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast ID hasher. Drop-in for interior, trusted-key
/// maps; do not use for keys an external input controls.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher64>>;

/// `HashSet` companion of [`FastHashMap`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher64>>;

/// 2⁶⁴ / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The word-at-a-time multiply-xor hasher. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(n: u64) -> u64 {
        let mut h = FxHasher64::default();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn sequential_keys_spread_across_high_bits() {
        // hashbrown derives its 7 control bits from the top of the hash;
        // sequential counters must not all land in the same bucket group.
        let tops: FastHashSet<u8> = (0..128u64).map(|n| (hash_of(n) >> 57) as u8).collect();
        assert!(tops.len() > 32, "only {} distinct top-7s", tops.len());
    }

    #[test]
    fn multi_write_order_matters() {
        let mut a = FxHasher64::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FxHasher64::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FxHasher64::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher64::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_smoke() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }
}
