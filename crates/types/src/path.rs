//! Tag-sequence paths.
//!
//! A [`Path`] is the host-chosen route of a packet: one output-port tag per
//! switch hop, *not* including the trailing ø marker (the codec appends it
//! on the wire). The paper writes a path like `2-3-5-ø`; here that is
//! `Path::from_ports([2, 3, 5])` and the ø appears only in the serialized
//! header.

use crate::error::DumbNetError;
use crate::ids::PortNo;
use crate::tag::Tag;

/// Semantic capacity; re-exported as [`Path::MAX_LEN`].
const MAX: usize = 64;

/// Inline small-buffer capacity. 22 one-byte tags keep the whole `Path`
/// at 32 bytes (the size of the spilled variant's `Vec` plus cursor),
/// and no practical topology needs more: a fat-tree traversal plus the
/// discovery framing tags stays under a dozen. Longer paths — legal up
/// to [`Path::MAX_LEN`] — spill to the heap.
const INLINE: usize = 22;

/// Backing store: a small inline buffer for the common case, a heap
/// vector for the rare long path. Both keep a head cursor so the
/// per-hop pop is an increment, never a shift or reallocation.
#[derive(Clone)]
enum Repr {
    Inline {
        tags: [Tag; INLINE],
        /// Number of initialized entries in `tags`.
        len: u8,
        /// Index of the first not-yet-consumed tag.
        head: u8,
    },
    Spill {
        tags: Vec<Tag>,
        /// Index of the first not-yet-consumed tag.
        head: u8,
    },
}

/// An ordered sequence of routing tags describing a route through the
/// fabric.
///
/// Besides plain port tags, a path may contain [`Tag::ID_QUERY`] entries —
/// topology-discovery probes insert them to ask a mid-path switch for its
/// identity (§4.1).
///
/// Internally the tags live in a 22-byte inline buffer with a head
/// cursor: [`Path::pop_front`] (the per-hop operation every switch
/// performs) advances the cursor, so a packet crosses the whole fabric
/// on the buffer it was sent with, and building, cloning, or reversing
/// a practical path never touches the allocator. Paths longer than the
/// inline buffer — up to [`Path::MAX_LEN`] — transparently spill to a
/// heap vector. The inline capacity is deliberately small: a `Path` is
/// embedded in every packet and every packet is copied through the
/// event queue's slab twice per hop, so path bytes are the simulator's
/// single largest memcpy bill. Every observable view — length,
/// equality, hashing, display, iteration, the wire encoding — covers
/// only the remaining tags and never betrays the representation.
///
/// # Examples
///
/// ```
/// use dumbnet_types::{Path, Tag};
///
/// // The H4→H5 example from §3.2 of the paper: ports 2, 3, 5.
/// let mut path = Path::from_ports([2, 3, 5]).unwrap();
/// assert_eq!(path.len(), 3);
/// assert_eq!(path.to_string(), "2-3-5-ø");
///
/// assert_eq!(path.pop_front(), Some(Tag(2)));
/// assert_eq!(path.to_string(), "3-5-ø");
/// ```
#[derive(Clone)]
pub struct Path {
    repr: Repr,
}

impl Default for Path {
    fn default() -> Path {
        Path::empty()
    }
}

impl Path {
    /// Maximum number of tags a path may carry.
    ///
    /// The Ethernet-compatible header leaves room for 64 one-byte tags
    /// (more than four times the diameter of any practical DCN topology);
    /// the MPLS encoding is the binding constraint in practice and also
    /// fits 64 labels within a 1450-byte MTU reservation.
    pub const MAX_LEN: usize = MAX;

    /// The empty path (source and destination on the same switch port —
    /// only meaningful for loopback probes).
    #[must_use]
    pub fn empty() -> Path {
        Path {
            repr: Repr::Inline {
                tags: [Tag(0); INLINE],
                len: 0,
                head: 0,
            },
        }
    }

    /// Builds a path from a validated slice (caller guarantees the
    /// length bound; tags are assumed routable).
    fn from_slice(tags: &[Tag]) -> Path {
        debug_assert!(tags.len() <= MAX);
        if tags.len() <= INLINE {
            let mut buf = [Tag(0); INLINE];
            buf[..tags.len()].copy_from_slice(tags);
            Path {
                repr: Repr::Inline {
                    tags: buf,
                    len: tags.len() as u8,
                    head: 0,
                },
            }
        } else {
            Path {
                repr: Repr::Spill {
                    tags: tags.to_vec(),
                    head: 0,
                },
            }
        }
    }

    /// Builds a path from raw tag values.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::PathTooLong`] if more than
    /// [`Path::MAX_LEN`] tags are supplied, and
    /// [`DumbNetError::InvalidTagInPath`] if any value is the ø marker
    /// (ø is a framing detail, not a routable tag).
    pub fn from_tags<I: IntoIterator<Item = Tag>>(tags: I) -> Result<Path, DumbNetError> {
        let mut path = Path::empty();
        let mut iter = tags.into_iter();
        for tag in iter.by_ref() {
            if tag.is_end() {
                return Err(DumbNetError::InvalidTagInPath(tag.byte()));
            }
            match &mut path.repr {
                Repr::Inline { tags, len, .. } if (*len as usize) < INLINE => {
                    tags[*len as usize] = tag;
                    *len += 1;
                }
                Repr::Inline { tags, .. } => {
                    // Inline buffer exhausted mid-build: spill and keep
                    // going (the path is still legal up to MAX).
                    let mut spilled = Vec::with_capacity(MAX);
                    spilled.extend_from_slice(&tags[..INLINE]);
                    spilled.push(tag);
                    path.repr = Repr::Spill {
                        tags: spilled,
                        head: 0,
                    };
                }
                Repr::Spill { tags, .. } => {
                    if tags.len() == MAX {
                        // Report the full supplied length, like the old
                        // collect-then-check implementation did.
                        return Err(DumbNetError::PathTooLong(MAX + 1 + iter.count()));
                    }
                    tags.push(tag);
                }
            }
        }
        Ok(path)
    }

    /// Builds a path of plain output-port tags.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::InvalidPort`] for port values `0` or `255`,
    /// or [`DumbNetError::PathTooLong`] for oversized paths.
    pub fn from_ports<I: IntoIterator<Item = u8>>(ports: I) -> Result<Path, DumbNetError> {
        let mut checked = Ok(());
        let path = Path::from_tags(ports.into_iter().map_while(|p| match Tag::port(p) {
            Ok(t) => Some(t),
            Err(e) => {
                checked = Err(e);
                None
            }
        }));
        checked?;
        path
    }

    /// Builds a path from validated port numbers (infallible except for
    /// length).
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::PathTooLong`] for oversized paths.
    pub fn from_port_nos<I: IntoIterator<Item = PortNo>>(ports: I) -> Result<Path, DumbNetError> {
        Path::from_tags(ports.into_iter().map(Tag::from_port))
    }

    /// Number of (remaining) tags in the path.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, head, .. } => usize::from(len - head),
            Repr::Spill { tags, head } => tags.len() - usize::from(*head),
        }
    }

    /// Returns `true` when no tags remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of *forwarding* hops, i.e. port tags (ID-query tags consume
    /// a switch visit but not a link traversal).
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.tags().iter().filter(|t| t.is_port()).count()
    }

    /// The remaining tags, in forwarding order.
    #[must_use]
    pub fn tags(&self) -> &[Tag] {
        match &self.repr {
            Repr::Inline { tags, len, head } => &tags[usize::from(*head)..usize::from(*len)],
            Repr::Spill { tags, head } => &tags[usize::from(*head)..],
        }
    }

    /// Consumes and returns the first tag, advancing the head cursor —
    /// the per-hop operation of a dumb switch. O(1), no copying.
    pub fn pop_front(&mut self) -> Option<Tag> {
        match &mut self.repr {
            Repr::Inline { tags, len, head } => {
                if head >= len {
                    return None;
                }
                let tag = tags[usize::from(*head)];
                *head += 1;
                Some(tag)
            }
            Repr::Spill { tags, head } => {
                let tag = *tags.get(usize::from(*head))?;
                *head += 1;
                Some(tag)
            }
        }
    }

    /// First tag plus the remainder of the path, as a switch sees it.
    ///
    /// Prefer [`Path::pop_front`] on owned paths; this copies the
    /// remainder for callers that must keep the original intact.
    #[must_use]
    pub fn split_first(&self) -> Option<(Tag, Path)> {
        let (&head, rest) = self.tags().split_first()?;
        Some((head, Path::from_slice(rest)))
    }

    /// Appends a tag, consuming and returning the path (builder style).
    ///
    /// # Errors
    ///
    /// Same as [`Path::from_tags`].
    pub fn push(mut self, tag: Tag) -> Result<Path, DumbNetError> {
        if tag.is_end() {
            return Err(DumbNetError::InvalidTagInPath(tag.byte()));
        }
        if self.len() >= MAX {
            return Err(DumbNetError::PathTooLong(self.len() + 1));
        }
        match &mut self.repr {
            Repr::Inline { tags, len, head } => {
                if (usize::from(*len)) == INLINE && *head > 0 {
                    // The buffer is full but the head cursor has
                    // advanced: compact the live view to make room.
                    tags.copy_within(usize::from(*head)..INLINE, 0);
                    *len -= *head;
                    *head = 0;
                }
                if (usize::from(*len)) < INLINE {
                    tags[usize::from(*len)] = tag;
                    *len += 1;
                } else {
                    // Inline capacity genuinely exhausted: spill.
                    let mut spilled = Vec::with_capacity(INLINE + INLINE / 2);
                    spilled.extend_from_slice(&tags[..INLINE]);
                    spilled.push(tag);
                    self.repr = Repr::Spill {
                        tags: spilled,
                        head: 0,
                    };
                }
            }
            Repr::Spill { tags, .. } => tags.push(tag),
        }
        Ok(self)
    }

    /// Concatenates two paths (used by the L3 router's cross-subnet
    /// shortcut, §6.3).
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::PathTooLong`] if the combined path exceeds
    /// [`Path::MAX_LEN`].
    pub fn concat(&self, other: &Path) -> Result<Path, DumbNetError> {
        let total = self.len() + other.len();
        if total > MAX {
            return Err(DumbNetError::PathTooLong(total));
        }
        if total <= INLINE {
            let mut buf = [Tag(0); INLINE];
            buf[..self.len()].copy_from_slice(self.tags());
            buf[self.len()..total].copy_from_slice(other.tags());
            Ok(Path {
                repr: Repr::Inline {
                    tags: buf,
                    len: total as u8,
                    head: 0,
                },
            })
        } else {
            let mut joined = Vec::with_capacity(total);
            joined.extend_from_slice(self.tags());
            joined.extend_from_slice(other.tags());
            Ok(Path {
                repr: Repr::Spill {
                    tags: joined,
                    head: 0,
                },
            })
        }
    }

    /// The paper's probe construction: the reverse of a port-tag path.
    ///
    /// When a host sends a probe out along `p1-p2-…-pn`, a reply can be
    /// delivered back by reversing the *ingress* ports, which the prober
    /// tracks separately; this helper merely reverses a tag list and is
    /// used when the forward and reverse port numbers are known to match
    /// (e.g. loopback bounce probes).
    #[must_use]
    pub fn reversed(&self) -> Path {
        let n = self.len();
        if n <= INLINE {
            let mut buf = [Tag(0); INLINE];
            for (i, &t) in self.tags().iter().rev().enumerate() {
                buf[i] = t;
            }
            Path {
                repr: Repr::Inline {
                    tags: buf,
                    len: n as u8,
                    head: 0,
                },
            }
        } else {
            Path {
                repr: Repr::Spill {
                    tags: self.tags().iter().rev().copied().collect(),
                    head: 0,
                },
            }
        }
    }

    /// Serializes the (remaining) path for the wire: the tags followed
    /// by ø.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.len() + 1);
        bytes.extend(self.tags().iter().map(|t| t.byte()));
        bytes.push(Tag::END.byte());
        bytes
    }

    /// Parses a wire tag sequence (tags terminated by ø).
    ///
    /// The scan is bounded: a terminator that does not appear within the
    /// first [`Path::MAX_LEN`]` + 1` bytes is treated as missing, so a
    /// corrupted length field cannot make the parser walk an entire
    /// jumbo payload.
    ///
    /// # Errors
    ///
    /// Returns [`DumbNetError::MissingEndMarker`] if no ø terminator is
    /// found within [`Path::MAX_LEN`]` + 1` bytes,
    /// [`DumbNetError::PathTooLong`] when the tag list is oversized, and
    /// [`DumbNetError::InvalidTagInPath`] is unreachable here because
    /// every pre-terminator byte is by construction not ø.
    pub fn from_wire(bytes: &[u8]) -> Result<(Path, usize), DumbNetError> {
        let window = &bytes[..bytes.len().min(MAX + 1)];
        let end = window
            .iter()
            .position(|&b| b == Tag::END.byte())
            .ok_or(DumbNetError::MissingEndMarker)?;
        let path = Path::from_tags(bytes[..end].iter().map(|&b| Tag(b)))?;
        Ok((path, end + 1))
    }
}

/// Equality covers the remaining view only: a path that was popped twice
/// equals a freshly built path of the same remaining tags, regardless of
/// which representation either uses.
impl PartialEq for Path {
    fn eq(&self, other: &Path) -> bool {
        self.tags() == other.tags()
    }
}

impl Eq for Path {}

impl std::hash::Hash for Path {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tags().hash(state);
    }
}

impl std::fmt::Debug for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Path").field("tags", &self.tags()).finish()
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in self.tags() {
            write!(f, "{t}-")?;
        }
        write!(f, "ø")
    }
}

impl std::ops::Index<usize> for Path {
    type Output = Tag;

    fn index(&self, ix: usize) -> &Tag {
        &self.tags()[ix]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_stays_pointer_sized_times_four() {
        // A Path rides inside every packet, and every packet is copied
        // through the event queue's slab twice per hop: its size is a
        // simulator-wide memcpy multiplier. Catch accidental growth.
        assert!(
            std::mem::size_of::<Path>() <= 32,
            "Path grew to {} bytes",
            std::mem::size_of::<Path>()
        );
    }

    #[test]
    fn wire_round_trip() {
        let p = Path::from_ports([2, 3, 5]).unwrap();
        let wire = p.to_wire();
        assert_eq!(wire, vec![2, 3, 5, 0xFF]);
        let (parsed, used) = Path::from_wire(&wire).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(used, 4);
    }

    #[test]
    fn wire_parse_with_trailing_payload() {
        let mut wire = Path::from_ports([9]).unwrap().to_wire();
        wire.extend_from_slice(&[0xAA, 0xBB]);
        let (parsed, used) = Path::from_wire(&wire).unwrap();
        assert_eq!(parsed.to_string(), "9-ø");
        assert_eq!(used, 2);
    }

    #[test]
    fn missing_end_marker_detected() {
        assert!(matches!(
            Path::from_wire(&[1, 2, 3]),
            Err(DumbNetError::MissingEndMarker)
        ));
    }

    #[test]
    fn from_wire_scan_is_bounded() {
        // Terminator present but past the legal window: the parser must
        // give up after MAX_LEN + 1 bytes, not walk the whole buffer.
        let mut wire = vec![1u8; Path::MAX_LEN + 10];
        wire.push(0xFF);
        assert!(matches!(
            Path::from_wire(&wire),
            Err(DumbNetError::MissingEndMarker)
        ));
        // Exactly MAX_LEN tags + terminator still parses.
        let mut max = vec![1u8; Path::MAX_LEN];
        max.push(0xFF);
        let (p, used) = Path::from_wire(&max).unwrap();
        assert_eq!(p.len(), Path::MAX_LEN);
        assert_eq!(used, Path::MAX_LEN + 1);
    }

    #[test]
    fn id_query_tags_allowed_in_paths() {
        // The discovery probe 0-9-ø from §4.1.
        let p = Path::from_tags([Tag::ID_QUERY, Tag(9)]).unwrap();
        assert_eq!(p.to_string(), "0-9-ø");
        assert_eq!(p.hop_count(), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn end_marker_rejected_inside_path() {
        assert!(Path::from_tags([Tag(1), Tag::END]).is_err());
        assert!(Path::empty().push(Tag::END).is_err());
    }

    #[test]
    fn length_limit_enforced() {
        let long: Vec<u8> = std::iter::repeat_n(1, Path::MAX_LEN).collect();
        let p = Path::from_ports(long.clone()).unwrap();
        assert_eq!(p.len(), Path::MAX_LEN);
        let too_long: Vec<u8> = std::iter::repeat_n(1, Path::MAX_LEN + 1).collect();
        assert!(Path::from_ports(too_long).is_err());
        assert!(p.push(Tag(1)).is_err());
    }

    #[test]
    fn oversize_error_reports_full_supplied_length() {
        let n = Path::MAX_LEN + 7;
        match Path::from_ports(std::iter::repeat_n(1, n)) {
            Err(DumbNetError::PathTooLong(got)) => assert_eq!(got, n),
            other => panic!("expected PathTooLong, got {other:?}"),
        }
    }

    #[test]
    fn invalid_port_beats_length_in_from_ports() {
        // A bad port value early in an oversized list reports the port
        // error, mirroring the item-by-item validation order.
        assert!(matches!(
            Path::from_ports([1, 0, 2]),
            Err(DumbNetError::InvalidPort(0))
        ));
    }

    #[test]
    fn concat_and_reverse() {
        let a = Path::from_ports([1, 2]).unwrap();
        let b = Path::from_ports([3]).unwrap();
        assert_eq!(a.concat(&b).unwrap().to_string(), "1-2-3-ø");
        assert_eq!(a.reversed().to_string(), "2-1-ø");
    }

    #[test]
    fn split_first_consumes_head() {
        let p = Path::from_ports([4, 7]).unwrap();
        let (head, rest) = p.split_first().unwrap();
        assert_eq!(head, Tag(4));
        let (head2, rest2) = rest.split_first().unwrap();
        assert_eq!(head2, Tag(7));
        assert!(rest2.split_first().is_none());
    }

    #[test]
    fn pop_front_view_matches_fresh_path() {
        let mut p = Path::from_ports([2, 3, 5]).unwrap();
        assert_eq!(p.pop_front(), Some(Tag(2)));
        let fresh = Path::from_ports([3, 5]).unwrap();
        // Every observable view must agree with a freshly built path.
        assert_eq!(p, fresh);
        assert_eq!(p.len(), fresh.len());
        assert_eq!(p.to_string(), fresh.to_string());
        assert_eq!(p.to_wire(), fresh.to_wire());
        assert_eq!(p.tags(), fresh.tags());
        assert_eq!(p[0], fresh[0]);
        assert_eq!(p.hop_count(), 2);
        let hash = |path: &Path| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            path.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&p), hash(&fresh));
        assert_eq!(p.pop_front(), Some(Tag(3)));
        assert_eq!(p.pop_front(), Some(Tag(5)));
        assert_eq!(p.pop_front(), None);
        assert!(p.is_empty());
        assert_eq!(p, Path::empty());
    }

    #[test]
    fn push_and_concat_after_pop_respect_view() {
        let mut p = Path::from_ports([1, 2, 3]).unwrap();
        p.pop_front();
        let extended = p.clone().push(Tag(9)).unwrap();
        assert_eq!(extended.to_string(), "2-3-9-ø");
        let joined = p.concat(&Path::from_ports([8]).unwrap()).unwrap();
        assert_eq!(joined.to_string(), "2-3-8-ø");
        assert_eq!(p.reversed().to_string(), "3-2-ø");
    }

    #[test]
    fn push_compacts_a_popped_full_buffer() {
        // Fill to capacity, consume a tag, then push: the remaining view
        // is MAX_LEN - 1 long, so the push must succeed even though the
        // physical buffer was full.
        let mut p = Path::from_ports(std::iter::repeat_n(1, Path::MAX_LEN)).unwrap();
        assert!(p.pop_front().is_some());
        let p = p.push(Tag(9)).unwrap();
        assert_eq!(p.len(), Path::MAX_LEN);
        assert_eq!(p[Path::MAX_LEN - 1], Tag(9));
    }

    #[test]
    fn spilled_and_inline_paths_are_indistinguishable() {
        // Build past the inline buffer, then pop back down to a short
        // remaining view: it must equal (and hash like) a fresh inline
        // path of the same tags.
        let long: Vec<u8> = (0..40u8).map(|i| 1 + (i % 200)).collect();
        let mut spilled = Path::from_ports(long.clone()).unwrap();
        for _ in 0..38 {
            spilled.pop_front();
        }
        let fresh = Path::from_ports(long[38..].iter().copied()).unwrap();
        assert_eq!(spilled, fresh);
        assert_eq!(spilled.len(), 2);
        assert_eq!(spilled.to_string(), fresh.to_string());
        let hash = |path: &Path| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            path.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&spilled), hash(&fresh));
    }

    #[test]
    fn push_promotes_across_the_inline_boundary() {
        // Grow one tag at a time through the spill threshold: every
        // intermediate view must match the equivalent from_ports path.
        let mut p = Path::empty();
        for i in 0..Path::MAX_LEN {
            p = p.push(Tag(1 + (i % 200) as u8)).unwrap();
            let want: Vec<u8> = (0..=i).map(|j| 1 + (j % 200) as u8).collect();
            assert_eq!(p, Path::from_ports(want).unwrap(), "at length {}", i + 1);
        }
        assert!(p.push(Tag(9)).is_err());
    }

    #[test]
    fn long_path_pops_through_the_spill() {
        let ports: Vec<u8> = (0..Path::MAX_LEN as u8).map(|i| 1 + i).collect();
        let mut p = Path::from_ports(ports.clone()).unwrap();
        for (i, &want) in ports.iter().enumerate() {
            assert_eq!(p.len(), Path::MAX_LEN - i);
            assert_eq!(p.pop_front(), Some(Tag(want)));
        }
        assert_eq!(p.pop_front(), None);
        assert!(p.is_empty());
    }
}
