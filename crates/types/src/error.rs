//! Error types shared across the workspace.

use serde::{Deserialize, Serialize};

/// Convenient result alias for fallible DumbNet operations.
pub type Result<T, E = DumbNetError> = std::result::Result<T, E>;

/// Errors produced by the DumbNet crates.
///
/// The enum is deliberately flat: it is shared across the packet codecs,
/// topology algorithms, host agent and controller, and a flat enum keeps
/// cross-crate error plumbing simple. Variants carry enough context to
/// identify the offending entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DumbNetError {
    /// A port number outside `1..=254` was used where a physical port was
    /// required.
    InvalidPort(u8),
    /// A tag value that may not appear inside a path (the ø marker).
    InvalidTagInPath(u8),
    /// A path exceeded [`crate::Path::MAX_LEN`] tags.
    PathTooLong(usize),
    /// A wire tag sequence had no ø terminator.
    MissingEndMarker,
    /// A frame was too short or otherwise malformed.
    MalformedFrame(String),
    /// A frame carried an unexpected EtherType.
    WrongEtherType(u16),
    /// A textual address failed to parse.
    AddressParse(String),
    /// A referenced switch does not exist in the topology.
    UnknownSwitch(u64),
    /// A referenced host does not exist in the topology.
    UnknownHost(u64),
    /// A referenced link does not exist in the topology.
    UnknownLink(u32),
    /// A port that is already wired was connected again.
    PortInUse(String),
    /// No route could be found between the requested endpoints.
    NoRoute {
        /// Source host.
        src: u64,
        /// Destination host.
        dst: u64,
    },
    /// A route failed verification against the topology or policy.
    PathRejected(String),
    /// The topology is inconsistent with an operation's expectations.
    TopologyInvariant(String),
    /// A simulation entity was addressed that does not exist.
    UnknownNode(String),
    /// The controller (or a quorum of replicas) is unreachable.
    ControllerUnavailable,
    /// An operation needed quorum agreement that was not reached.
    QuorumLost {
        /// Acknowledgements received.
        acks: usize,
        /// Acknowledgements required.
        needed: usize,
    },
    /// Catch-all for configuration errors in experiment setups.
    Config(String),
}

impl std::fmt::Display for DumbNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumbNetError::InvalidPort(p) => write!(f, "invalid port number {p} (must be 1..=254)"),
            DumbNetError::InvalidTagInPath(t) => {
                write!(f, "tag {t:#04x} may not appear inside a path")
            }
            DumbNetError::PathTooLong(n) => write!(f, "path of {n} tags exceeds the maximum"),
            DumbNetError::MissingEndMarker => write!(f, "tag sequence missing ø terminator"),
            DumbNetError::MalformedFrame(why) => write!(f, "malformed frame: {why}"),
            DumbNetError::WrongEtherType(t) => write!(f, "unexpected EtherType {t:#06x}"),
            DumbNetError::AddressParse(s) => write!(f, "cannot parse address {s:?}"),
            DumbNetError::UnknownSwitch(id) => write!(f, "unknown switch S{id}"),
            DumbNetError::UnknownHost(id) => write!(f, "unknown host H{id}"),
            DumbNetError::UnknownLink(id) => write!(f, "unknown link L{id}"),
            DumbNetError::PortInUse(p) => write!(f, "port {p} already wired"),
            DumbNetError::NoRoute { src, dst } => write!(f, "no route from H{src} to H{dst}"),
            DumbNetError::PathRejected(why) => write!(f, "path rejected: {why}"),
            DumbNetError::TopologyInvariant(why) => {
                write!(f, "topology invariant violated: {why}")
            }
            DumbNetError::UnknownNode(n) => write!(f, "unknown simulation node {n}"),
            DumbNetError::ControllerUnavailable => write!(f, "controller unavailable"),
            DumbNetError::QuorumLost { acks, needed } => {
                write!(f, "quorum lost ({acks}/{needed} acks)")
            }
            DumbNetError::Config(why) => write!(f, "configuration error: {why}"),
        }
    }
}

impl std::error::Error for DumbNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DumbNetError::NoRoute { src: 1, dst: 2 };
        assert_eq!(e.to_string(), "no route from H1 to H2");
        let e = DumbNetError::QuorumLost { acks: 1, needed: 2 };
        assert!(e.to_string().contains("1/2"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(DumbNetError::MissingEndMarker);
    }
}
