//! Virtual time units used by the emulator and the analytic models.
//!
//! The emulator is a deterministic discrete-event simulator; it measures
//! time as nanoseconds since simulation start in a `u64`, which covers
//! ~584 years of virtual time — far beyond any experiment.

use serde::{Deserialize, Serialize};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    #[must_use]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Converts to seconds as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Converts to milliseconds as a float (for reporting only).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts to microseconds as a float (for reporting only).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Instant `d` after `self`, saturating at the end of time.
    #[must_use]
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        self.after(d)
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Constructs from whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Constructs from fractional seconds, saturating on overflow and
    /// clamping negatives to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[must_use]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds as a float (for reporting only).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating sum.
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scales the duration by an integer factor, saturating.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;

    fn add(self, other: SimDuration) -> SimDuration {
        self.saturating_add(other)
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, SimDuration::saturating_add)
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(3);
        assert_eq!(t1.nanos(), 3_000_000);
        assert_eq!((t1 - t0).as_millis_f64(), 3.0);
        // Saturating subtraction never underflows.
        assert_eq!((t0 - t1), SimDuration::ZERO);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_micros(5).nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).nanos(), 250_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e300).nanos(), u64::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn saturating_mul_caps() {
        let big = SimDuration(u64::MAX / 2 + 1);
        assert_eq!(big.saturating_mul(3).nanos(), u64::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total.nanos(), 6);
    }
}
