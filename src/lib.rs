//! # DumbNet — a smart data center network fabric with dumb switches
//!
//! A from-scratch Rust reproduction of *DumbNet* (Li et al., EuroSys
//! 2018): a data-center network architecture in which switches keep **no
//! forwarding state** — no tables, no configuration. Hosts compute the
//! entire path of every packet and write it into the header as a list of
//! one-byte output-port tags; each switch pops the head tag and forwards
//! blindly. All control-plane functions — topology discovery, routing,
//! failure handling, traffic engineering — run as ordinary host software.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`types`] | Tags, paths, identifiers, virtual-time units |
//! | [`packet`] | Wire formats (EtherType 0x9800 tag header, MPLS encoding) and control messages |
//! | [`topology`] | Graph model, generators, shortest paths, k-shortest paths, path graphs (Algorithm 1) |
//! | [`sim`] | Deterministic discrete-event emulator + flow-level max-min solver |
//! | [`telemetry`] | Typed metrics registry (counters/gauges/histograms), snapshots, trace ring |
//! | [`switch`] | The dumb switch, and the spanning-tree baseline |
//! | [`host`] | Host agent: TopoCache, PathTable, datapath model |
//! | [`controller`] | Discovery, path-graph service, replication, failure patching |
//! | [`fabric`] | Whole-deployment orchestration ([`Fabric`]) |
//! | [`ext`] | Extensions: flowlet TE, L3 router, network virtualization |
//! | [`fpga`] | FPGA resource/latency models (Figure 7) |
//! | [`workload`] | iperf-style and HiBench-style workload generators, CDF helpers |
//!
//! ## Quickstart
//!
//! ```
//! use dumbnet::fabric::{Fabric, FabricConfig};
//! use dumbnet::host::agent::AppAction;
//! use dumbnet::host::HostAgent;
//! use dumbnet::topology::generators;
//! use dumbnet::types::{HostId, MacAddr, SimDuration, SimTime};
//!
//! // The paper's testbed: 2 spines, 5 leaves, 27 hosts. Host 0 is the
//! // controller; host 1 pings host 26.
//! let g = generators::testbed();
//! let mut fabric = Fabric::build_with(g.topology, FabricConfig::default(), |id, mut cfg| {
//!     if id == HostId(1) {
//!         cfg.actions = vec![AppAction::PingSeries {
//!             at: SimDuration::from_millis(20),
//!             dst: MacAddr::for_host(26),
//!             count: 3,
//!             interval: SimDuration::from_millis(1),
//!         }];
//!     }
//!     HostAgent::new(id, cfg)
//! })
//! .unwrap();
//! fabric.run_until(SimTime::ZERO + SimDuration::from_millis(100));
//! assert_eq!(fabric.host(HostId(1)).unwrap().stats().rtts.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dumbnet_controller as controller;
pub use dumbnet_core as fabric;
pub use dumbnet_ext as ext;
pub use dumbnet_fpga as fpga;
pub use dumbnet_host as host;
pub use dumbnet_packet as packet;
pub use dumbnet_sim as sim;
pub use dumbnet_switch as switch;
pub use dumbnet_telemetry as telemetry;
pub use dumbnet_topology as topology;
pub use dumbnet_types as types;
pub use dumbnet_workload as workload;

pub use dumbnet_core::{Fabric, FabricConfig};

/// Re-exports of the most commonly used items.
pub mod prelude {
    pub use dumbnet_core::{Fabric, FabricConfig};
    pub use dumbnet_host::{HostAgent, HostAgentConfig};
    pub use dumbnet_topology::{generators, Topology};
    pub use dumbnet_types::prelude::*;
}
