//! Network virtualization (§6.1): two tenants slice the testbed, and the
//! path verifier blocks a tenant's attempt to route through the other
//! tenant's spine.
//!
//! Run with `cargo run --example virtualization`.

use dumbnet::ext::vnet::{TenantId, VirtualNetworks};
use dumbnet::topology::{generators, spath, Route};
use dumbnet::types::{HostId, SwitchId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = generators::testbed();
    let topo = &g.topology;
    let spines = g.group("spine").to_vec();
    let leaves = g.group("leaf").to_vec();

    // Tenant 1: leaves 0–1 + spine 0. Tenant 2: leaves 3–4 + spine 1.
    let mut vnets = VirtualNetworks::new();
    vnets.register(
        TenantId(1),
        VirtualNetworks::slice_by_switches(topo, [spines[0], leaves[0], leaves[1]]),
    );
    vnets.register(
        TenantId(2),
        VirtualNetworks::slice_by_switches(topo, [spines[1], leaves[3], leaves[4]]),
    );
    println!("registered {} tenants", vnets.len());

    let mut rng = StdRng::seed_from_u64(5);
    let route_via = |via: SwitchId| -> Route {
        let a = topo.host(HostId(0)).unwrap().attached.switch;
        let b = topo.host(HostId(7)).unwrap().attached.switch;
        let r1 = spath::shortest_route(topo, a, via, &mut StdRng::seed_from_u64(1)).unwrap();
        let r2 = spath::shortest_route(topo, via, b, &mut StdRng::seed_from_u64(2)).unwrap();
        let mut s = r1.switches().to_vec();
        s.extend_from_slice(&r2.switches()[1..]);
        Route::new(s).unwrap()
    };
    let _ = &mut rng;

    // Tenant 1 sends H0 (leaf 0) → H7 (leaf 1) through its own spine.
    let good = route_via(spines[0])
        .to_tag_path(topo, HostId(0), HostId(7))
        .unwrap();
    match vnets.verify(TenantId(1), topo, HostId(0), &good) {
        Ok(trace) => println!(
            "tenant 1 path {good} ACCEPTED (delivers to {:?})",
            trace.delivered_to
        ),
        Err(e) => println!("unexpected rejection: {e}"),
    }

    // The same pair routed through tenant 2's spine: must be rejected.
    let sneaky = route_via(spines[1])
        .to_tag_path(topo, HostId(0), HostId(7))
        .unwrap();
    match vnets.verify(TenantId(1), topo, HostId(0), &sneaky) {
        Ok(_) => println!("POLICY HOLE: cross-tenant path accepted!"),
        Err(e) => println!("tenant 1 path {sneaky} REJECTED: {e}"),
    }

    // And a path to a host outside the slice.
    let foreign = spath::shortest_route(
        topo,
        topo.host(HostId(0)).unwrap().attached.switch,
        topo.host(HostId(20)).unwrap().attached.switch,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap()
    .to_tag_path(topo, HostId(0), HostId(20))
    .unwrap();
    match vnets.verify(TenantId(1), topo, HostId(0), &foreign) {
        Ok(_) => println!("POLICY HOLE: foreign host reachable!"),
        Err(e) => println!("tenant 1 path to foreign host REJECTED: {e}"),
    }

    println!(
        "\naudit log: {:?}",
        vnets
            .verifications
            .iter()
            .map(|(t, ok)| format!("tenant{} {}", t.0, if *ok { "ok" } else { "denied" }))
            .collect::<Vec<_>>()
    );
}
