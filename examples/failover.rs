//! Failure handling end to end (§4.2): a stream crosses the fabric, a
//! spine link dies, and the two-stage notification machinery reroutes it.
//!
//! Run with `cargo run --example failover`.

use dumbnet::fabric::{Fabric, FabricConfig};
use dumbnet::host::agent::AppAction;
use dumbnet::host::HostAgent;
use dumbnet::topology::generators;
use dumbnet::types::{HostId, MacAddr, SimDuration, SimTime};

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn main() {
    let g = generators::testbed();
    let spines = g.group("spine").to_vec();
    let leaves = g.group("leaf").to_vec();

    // Host 1 (leaf 0) streams 400 packets to host 26 (leaf 4),
    // 500 µs apart: 10 ms … 210 ms.
    let mut fabric = Fabric::build_with(g.topology, FabricConfig::default(), |id, mut cfg| {
        if id == HostId(1) {
            cfg.actions = vec![AppAction::DataStream {
                at: SimDuration::from_millis(10),
                dst: MacAddr::for_host(26),
                flow: 7,
                packets: 400,
                bytes: 1000,
                interval: SimDuration::from_micros(500),
            }];
        }
        HostAgent::new(id, cfg)
    })
    .expect("fabric builds");

    // Cut leaf0 ↔ spine0 mid-stream.
    let t_fail = at_ms(100);
    fabric
        .schedule_link_failure(t_fail, leaves[0], spines[0])
        .expect("link exists");
    println!("failing link {} ↔ {} at {t_fail}", leaves[0], spines[0]);

    fabric.run_until(at_ms(400));

    let rx = fabric.host(HostId(26)).expect("receiver");
    let &(pkts, bytes) = rx.stats().delivered.get(&7).expect("flow delivered");
    println!("\nreceiver H26: {pkts}/400 packets ({bytes} bytes) delivered");

    let tx = fabric.host(HostId(1)).expect("sender");
    println!("\nsender H1 failure timeline:");
    for (ev, at) in &tx.stats().notification_arrivals {
        println!(
            "  stage 1: {}-{} {} notification at {} (+{} after failure)",
            ev.switch,
            ev.port,
            if ev.up { "up" } else { "down" },
            at,
            *at - t_fail,
        );
    }
    for (version, at) in &tx.stats().patch_arrivals {
        println!(
            "  stage 2: topology patch v{version} at {} (+{} after failure)",
            at,
            *at - t_fail,
        );
    }

    // How many hosts heard about the failure at all?
    let mut notified = 0;
    for h in 1..27 {
        if let Some(agent) = fabric.host(HostId(h)) {
            if !agent.stats().notification_arrivals.is_empty() {
                notified += 1;
            }
        }
    }
    println!("\n{notified}/26 hosts received stage-1 notifications");
}
