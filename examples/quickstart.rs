//! Quickstart: build the paper's testbed, boot the fabric, and watch a
//! source-routed ping cross it.
//!
//! Run with `cargo run --example quickstart`.

use dumbnet::fabric::{Fabric, FabricConfig};
use dumbnet::host::agent::AppAction;
use dumbnet::host::HostAgent;
use dumbnet::topology::generators;
use dumbnet::types::{HostId, MacAddr, SimDuration, SimTime};

fn main() {
    // The testbed of §7: 7 switches (2 spine + 5 leaf), 27 servers.
    let g = generators::testbed();
    println!(
        "topology: {} switches, {} links, {} hosts",
        g.topology.switch_count(),
        g.topology.link_count(),
        g.topology.host_count()
    );

    // Host 0 runs the controller; host 1 pings host 26 ten times.
    let mut fabric = Fabric::build_with(g.topology, FabricConfig::default(), |id, mut cfg| {
        if id == HostId(1) {
            cfg.actions = vec![AppAction::PingSeries {
                at: SimDuration::from_millis(20),
                dst: MacAddr::for_host(26),
                count: 10,
                interval: SimDuration::from_millis(2),
            }];
        }
        HostAgent::new(id, cfg)
    })
    .expect("testbed wires cleanly");

    fabric.run_until(SimTime::ZERO + SimDuration::from_millis(200));

    let pinger = fabric.host(HostId(1)).expect("host 1 is an agent");
    println!("\nping H1 → H26 ({} replies):", pinger.stats().rtts.len());
    for (seq, _sent, rtt) in &pinger.stats().rtts {
        println!("  seq={seq:<3} rtt={rtt}");
    }
    println!(
        "\npath requests to controller: {} (first ping pays the lookup,\n\
         the rest hit the PathTable: {} hits / {} misses)",
        pinger.stats().path_requests,
        pinger.pathtable.hits,
        pinger.pathtable.misses
    );

    // Show what the cached tag path actually looks like.
    if let Some(entry) = pinger.pathtable.entry(MacAddr::for_host(26)) {
        println!("\ncached paths to H26:");
        for p in entry.all_paths() {
            println!("  {}  (via {})", p.tags, p.route);
        }
    }
}
