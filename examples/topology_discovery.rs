//! Topology discovery with dumb switches (§4.1): a single controller
//! maps an entire fat-tree by probing, with zero switch support beyond
//! tag forwarding and ID queries.
//!
//! Run with `cargo run --release --example topology_discovery`.

use dumbnet::fabric::{Fabric, FabricConfig};
use dumbnet::topology::generators;
use dumbnet::types::{HostId, SimDuration, SimTime};

fn main() {
    // A k=4 fat-tree: 20 switches, 32 links, 16 hosts.
    let g = generators::fat_tree(4, 2, None);
    let truth = g.topology.clone();
    println!(
        "ground truth: {} switches, {} links, {} hosts",
        truth.switch_count(),
        truth.link_count(),
        truth.host_count()
    );

    let mut cfg = FabricConfig::default();
    cfg.controller.run_discovery = true;
    cfg.controller.discovery.max_ports = 8;
    cfg.controller.discovery.timeout = SimDuration::from_millis(5);
    cfg.controller.probe_interval = SimDuration::from_micros(33);

    let mut fabric = Fabric::build(g.topology, cfg).expect("fabric builds");
    fabric.run_until(SimTime::ZERO + SimDuration::from_secs(30));

    let ctrl = fabric.controller(HostId(0)).expect("controller");
    assert!(ctrl.ready(), "discovery did not finish in time");
    let found = ctrl.topology.as_ref().expect("topology");
    println!(
        "\ndiscovered: {} switches, {} links, {} hosts",
        found.switch_count(),
        found.link_count(),
        found.host_count()
    );
    println!(
        "probes sent: {} (O(N·P²) = {}·{}² = {})",
        ctrl.stats().probes_sent,
        truth.switch_count(),
        8,
        truth.switch_count() * 64,
    );
    println!(
        "discovery time: {}",
        ctrl.stats().discovery_time.expect("finished")
    );

    // Verify the map is exact.
    let mut exact = true;
    for l in found.links() {
        if truth.link_between(l.a.switch, l.b.switch).is_none() {
            println!("phantom link {} ↔ {}", l.a, l.b);
            exact = false;
        }
    }
    for h in truth.hosts() {
        match found.host_by_mac(h.mac) {
            Some(f) if f.attached == h.attached => {}
            other => {
                println!(
                    "host {} misdiscovered: {:?}",
                    h.mac,
                    other.map(|x| x.attached)
                );
                exact = false;
            }
        }
    }
    println!(
        "\nstructure check: {}",
        if exact && found.link_count() == truth.link_count() {
            "EXACT MATCH"
        } else {
            "MISMATCH"
        }
    );
}
