//! Flowlet traffic engineering (§6.2) at flow level: the same leaf-to-
//! leaf workload routed three ways — spanning-tree single path, DumbNet
//! per-flow random path, and DumbNet flowlet TE — and the aggregate
//! throughput each achieves.
//!
//! Run with `cargo run --release --example flowlet_te`.

use dumbnet::ext::FlowletRouting;
use dumbnet::host::pathtable::FlowKey;
use dumbnet::sim::FlowSim;
use dumbnet::topology::{generators, k_shortest_routes, Route};
use dumbnet::types::{Bandwidth, HostId, SimTime, SwitchId};
use dumbnet::workload::{iperf, FlowMap};

/// Drives a flow set with per-flow path selection and reports the time
/// to drain all bytes (higher aggregate throughput ⇒ earlier drain).
fn run_policy(name: &str, choose: &mut dyn FnMut(usize, &[Route]) -> usize) -> f64 {
    let g = generators::testbed();
    let topo = &g.topology;
    let leaves = g.group("leaf").to_vec();
    let spines = g.group("spine").to_vec();
    let mut fs = FlowSim::new();
    let map = FlowMap::build(&mut fs, topo, Bandwidth::gbps(10), Bandwidth::gbps(10));
    // Paper setting: spine ports capped to make the fabric the
    // bottleneck.
    for &s in &spines {
        map.cap_switch_ports(&mut fs, s, Bandwidth::mbps(500));
    }
    let _ = leaves;

    // 6 hosts on leaf 0 each stream 250 MB to a partner on leaf 4.
    let senders: Vec<HostId> = (0..5).map(HostId).collect();
    let receivers: Vec<HostId> = (22..27).map(HostId).collect();
    let flows = iperf::paired(&senders, &receivers, 250_000_000);

    let mut handles = Vec::new();
    for (ix, f) in flows.iter().enumerate() {
        let src_sw = topo.host(f.src).unwrap().attached.switch;
        let dst_sw = topo.host(f.dst).unwrap().attached.switch;
        let routes = k_shortest_routes(topo, src_sw, dst_sw, 2);
        let route = &routes[choose(ix, &routes) % routes.len()];
        let path = map.path(f.src, f.dst, route).unwrap();
        handles.push(fs.start_flow(path, f.bytes));
    }
    fs.run_until_idle();
    let drain = handles
        .iter()
        .filter_map(|&h| fs.finished_at(h))
        .max()
        .unwrap_or(SimTime::ZERO)
        .as_secs_f64();
    println!("{name:<28} drained in {drain:7.2}s");
    drain
}

fn main() {
    println!("5 × 250 MB leaf0 → leaf4, spine ports capped at 500 Mbps\n");

    // Conventional spanning tree: every flow crosses the same spine.
    let st = run_policy("spanning tree (1 spine)", &mut |_, routes| {
        // Deterministically pick the route through the lowest spine id.
        routes
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.switches()[1])
            .map(|(ix, _)| ix)
            .unwrap_or(0)
    });

    // DumbNet single path: each flow sticks to a random spine.
    let single = run_policy("DumbNet per-flow random", &mut |ix, _| {
        // The PathTable's flow-hash assignment.
        ix.wrapping_mul(0x9E37_79B9)
    });

    // Flowlet TE: model the fine-grained rebalancing as an even split —
    // with many flowlets per flow, load converges to uniform.
    let te = run_policy("DumbNet flowlet TE", &mut |ix, _| ix);

    println!(
        "\nspeedup vs spanning tree: single-path {:.2}×, flowlet TE {:.2}×",
        st / single,
        st / te
    );

    // The packet-level flowlet machinery itself (epoch bumping on idle
    // gaps) is exercised here for illustration:
    let mut fr = FlowletRouting::new(dumbnet::types::SimDuration::from_micros(500));
    use dumbnet::host::RoutingFn;
    let t0 = SimTime::ZERO;
    let a = fr
        .choose(dumbnet::types::MacAddr::for_host(1), FlowKey(1), t0, 2)
        .unwrap();
    let t1 = t0 + dumbnet::types::SimDuration::from_millis(5);
    let _b = fr
        .choose(dumbnet::types::MacAddr::for_host(1), FlowKey(1), t1, 2)
        .unwrap();
    println!(
        "\nflowlet state after 5 ms idle gap: epoch {} (started on path {a})",
        fr.state(FlowKey(1)).unwrap().epoch
    );
    let _ = SwitchId(0);
}
