//! The software layer-3 router (§6.3): two DumbNet subnets joined by a
//! router node, plus the cross-subnet source-routing shortcut.
//!
//! Run with `cargo run --example l3_router`.

use std::collections::HashMap;

use dumbnet::ext::router::{combined_path, L3Router, RouterConfig, Subnet};
use dumbnet::packet::{Packet, Payload};
use dumbnet::sim::{Ctx, LinkParams, Node, World};
use dumbnet::switch::{DumbSwitch, DumbSwitchConfig};
use dumbnet::types::{MacAddr, Path, PortNo, SimTime, SwitchId};

/// Minimal host that records what it receives.
struct EchoHost {
    name: &'static str,
    received: u64,
}

impl Node for EchoHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: PortNo, pkt: Packet) {
        if let Payload::Ip { src_ip, dst_ip, .. } = pkt.payload {
            self.received += 1;
            println!(
                "  {} received {:#010x} → {:#010x} at {}",
                self.name,
                src_ip,
                dst_ip,
                ctx.now()
            );
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn p(n: u8) -> PortNo {
    PortNo::new(n).unwrap()
}

fn main() {
    // Subnet A (10.0/16): swA with host A on port 1, router on port 2.
    // Subnet B (10.1/16): swB with host B on port 1, router on port 2.
    // Optional shortcut: swA port 3 ↔ swB port 3.
    let mut w = World::new(0);
    let sw_a = w.add_node(Box::new(DumbSwitch::new(
        SwitchId(0),
        8,
        DumbSwitchConfig::default(),
    )));
    let sw_b = w.add_node(Box::new(DumbSwitch::new(
        SwitchId(1),
        8,
        DumbSwitchConfig::default(),
    )));
    let host_a = w.add_node(Box::new(EchoHost {
        name: "hostA",
        received: 0,
    }));
    let host_b = w.add_node(Box::new(EchoHost {
        name: "hostB",
        received: 0,
    }));

    let mut paths_a = HashMap::new();
    paths_a.insert(0x0A00_0001, Path::from_ports([1]).unwrap());
    let mut paths_b = HashMap::new();
    paths_b.insert(0x0A01_0001, Path::from_ports([1]).unwrap());
    let router = w.add_node(Box::new(L3Router::new(
        MacAddr::for_host(99),
        RouterConfig {
            subnets: vec![
                Subnet {
                    port: p(1),
                    prefix: (0x0A00_0000, 0xFFFF_0000),
                    paths: paths_a,
                },
                Subnet {
                    port: p(2),
                    prefix: (0x0A01_0000, 0xFFFF_0000),
                    paths: paths_b,
                },
            ],
        },
    )));

    w.wire(host_a, p(1), sw_a, p(1), LinkParams::ten_gig())
        .unwrap();
    w.wire(router, p(1), sw_a, p(2), LinkParams::ten_gig())
        .unwrap();
    w.wire(router, p(2), sw_b, p(2), LinkParams::ten_gig())
        .unwrap();
    w.wire(host_b, p(1), sw_b, p(1), LinkParams::ten_gig())
        .unwrap();
    w.wire(sw_a, p(3), sw_b, p(3), LinkParams::ten_gig())
        .unwrap();

    // 1) Via the router: host A → 10.1.0.1, L2 path to the router.
    println!("via router:");
    let via_router = Packet {
        dst: MacAddr::for_host(99),
        src: MacAddr::for_host(0),
        path: Path::from_ports([2]).unwrap(),
        payload: Payload::Ip {
            src_ip: 0x0A00_0001,
            dst_ip: 0x0A01_0001,
            flow: 1,
            seq: 0,
            bytes: 800,
        },
        ecn: false,
    };
    w.inject(SimTime::ZERO, sw_a, p(1), via_router);
    w.run_to_idle(1000);

    // 2) Via the shortcut: the router reveals the combined path and the
    //    source stamps it directly (§6.3).
    println!("\nvia cross-subnet shortcut (router bypassed):");
    let to_border = Path::from_ports([3]).unwrap();
    let beyond = Path::from_ports([1]).unwrap();
    let shortcut = combined_path(&to_border, &beyond).unwrap();
    println!("  combined tag path: {shortcut}");
    let direct = Packet {
        dst: MacAddr::for_host(1),
        src: MacAddr::for_host(0),
        path: shortcut,
        payload: Payload::Ip {
            src_ip: 0x0A00_0001,
            dst_ip: 0x0A01_0001,
            flow: 2,
            seq: 0,
            bytes: 800,
        },
        ecn: false,
    };
    w.inject(w.now(), sw_a, p(1), direct);
    w.run_to_idle(1000);

    let r = w.node::<L3Router>(router).unwrap();
    println!(
        "\nrouter forwarded {} packet(s); host B received {}",
        r.forwarded,
        w.node::<EchoHost>(host_b).unwrap().received
    );
}
